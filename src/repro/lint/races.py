"""Happens-before data-race and determinism checking (TASKPROF-style).

The grain graph's creation/continuation/join edges encode the *logical*
series-parallel structure of the program, independent of the schedule
that happened to run.  Two grain nodes with no directed path either way
are logically parallel: another schedule may execute them in the other
order or simultaneously.  If such nodes carry conflicting memory
footprints (same region, overlapping byte ranges, at least one write),
the program's result is schedule-dependent — a data race, and a
determinism violation the thread timeline can never show because *some*
interleaving always executed.

Chunks of one parallel for-loop are special-cased: the per-thread
book-keeping chains in the graph encode the accidental chunk-to-thread
assignment, so same-loop chunks are treated as pairwise logically
parallel regardless of chain paths (see
:func:`repro.core.reachability.logically_ordered`, shared with the
static certifier).

This mechanically catches the missing-``TaskWait`` class of bugs: two
sibling tasks writing one region, or a parent reading a region its
un-synchronized child still writes.

:func:`scan_conflicts` is the reusable core: it works on *any* grain
graph whose grain nodes carry footprints — the dynamic graph built from
a trace here, and the symbolic graph built by :mod:`repro.staticc`'s
all-schedule race certifier (``static.race``), which therefore agrees
with this pass by construction wherever the two graphs coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..core.nodes import GGNode, GrainGraph
from ..core.reachability import Reachability, logically_ordered
from .diagnostics import Diagnostic, Severity
from .framework import GRAPH_LAYER, register

# Upper bound on pairwise conflict checks; beyond it the scan reports
# truncation (never silently) — real annotated programs stay far below.
MAX_PAIR_CHECKS = 250_000

_FIX_HINT = (
    "order the accesses (TaskWait() between the spawns, or a loop "
    "barrier) or make the footprints disjoint"
)


@dataclass(frozen=True)
class Conflict:
    """One pair of logically-parallel grains with overlapping footprints."""

    region: str
    kind: str  # "write/write" | "read/write"
    overlap_start: int
    overlap_end: int
    first: GGNode
    second: GGNode

    @property
    def writer(self) -> GGNode:
        """The node anchoring the diagnostic (a writing side)."""
        return self.first

    @property
    def grain_pair(self) -> tuple[str, str]:
        """The sorted grain-id pair, the schedule-independent identity."""
        pair = sorted((self.first.grain_id or "", self.second.grain_id or ""))
        return (pair[0], pair[1])


@dataclass(frozen=True)
class ConflictScan:
    """All conflicts of one graph, plus whether the scan was cut short.

    ``pruner`` records which structural filter decided pair ordering:
    ``"sp-tree"`` (MHP over the series-parallel tree, uncapped),
    ``"reachability"`` (bitset fallback, subject to the pair cap), or
    ``"none"`` (no candidate pairs / cyclic graph).
    """

    conflicts: tuple[Conflict, ...]
    truncated: bool
    pruner: str = "none"

    def keys(self) -> set[tuple[str, str, str]]:
        """``(region, gid_a, gid_b)`` identities, for cross-graph
        comparison (the static-subsumes-dynamic guarantee)."""
        return {
            (c.region, c.grain_pair[0], c.grain_pair[1])
            for c in self.conflicts
        }


def scan_conflicts(
    graph: GrainGraph,
    max_pair_checks: int = MAX_PAIR_CHECKS,
    force_reachability: bool = False,
) -> ConflictScan:
    """Find conflicting footprints on logically-parallel grain nodes.

    Works on any DAG of footprint-carrying grain nodes: the dynamic
    grain graph and the static symbolic graph alike.  One conflict is
    reported per (region, grain pair); ranges are scanned in sorted
    order so the result is deterministic.

    Pair ordering is decided structurally by an SP-tree MHP query
    (:class:`repro.staticc.mhp.SPTree`, O(depth) per pair, *uncapped*)
    whenever the graph decomposes as series-parallel — every graph this
    runtime produces does.  Graphs that fail to decompose fall back to
    bitset reachability under the ``max_pair_checks`` cap, reporting
    truncation explicitly.  ``force_reachability=True`` pins the
    fallback path (the differential-testing reference).
    """
    # Collect footprint accesses per region: (start, end, write, node).
    by_region: dict[str, list[tuple[int, int, bool, GGNode]]] = {}
    writes_in: set[str] = set()
    for node in graph.grain_nodes():
        for region, start, end in node.reads:
            if end > start:
                by_region.setdefault(region, []).append(
                    (start, end, False, node)
                )
        for region, start, end in node.writes:
            if end > start:
                by_region.setdefault(region, []).append(
                    (start, end, True, node)
                )
                writes_in.add(region)
    candidate_regions = {
        region: accesses
        for region, accesses in by_region.items()
        if region in writes_in and len(accesses) > 1
    }
    if not candidate_regions:
        return ConflictScan(conflicts=(), truncated=False)
    try:
        graph.topological_order()
    except ValueError:
        # structure.acyclic reports this; reachability needs a DAG.
        return ConflictScan(conflicts=(), truncated=False)
    # Lazy import: repro.staticc registers program-layer passes that
    # import this module, so the dependency must stay call-time only.
    from ..staticc.mhp import SPDecompositionError, SPTree

    tree: SPTree | None = None
    if not force_reachability:
        try:
            tree = SPTree(graph)
        except SPDecompositionError:
            tree = None  # non-SP shape: bitset fallback below
    ordered: Callable[[GGNode, GGNode], bool]
    if tree is not None:
        pruner = "sp-tree"
        ordered = tree.ordered
        cap: int | None = None  # MHP pruning needs no pair cap
    else:
        pruner = "reachability"
        sources = {
            node.node_id
            for accesses in candidate_regions.values()
            for _, _, _, node in accesses
        }
        reach = Reachability(graph, sources)

        def _via_reachability(n1: GGNode, n2: GGNode) -> bool:
            return logically_ordered(reach, n1, n2)

        ordered = _via_reachability
        cap = max_pair_checks
    conflicts: list[Conflict] = []
    flagged: set[tuple[str, str, str]] = set()
    checks = 0
    truncated = False
    for region in sorted(candidate_regions):
        accesses = sorted(
            candidate_regions[region],
            key=lambda item: (item[0], item[1], item[3].node_id),
        )
        for i, (s1, e1, w1, n1) in enumerate(accesses):
            for s2, e2, w2, n2 in accesses[i + 1:]:
                if s2 >= e1:
                    break  # sorted by start: no later range overlaps
                if not (w1 or w2):
                    continue
                if n1.grain_id == n2.grain_id:
                    continue  # a grain's own fragments are chained
                gid_a, gid_b = sorted((n1.grain_id or "", n2.grain_id or ""))
                key = (region, gid_a, gid_b)
                if key in flagged:
                    continue
                if cap is not None and checks >= cap:
                    truncated = True
                    break
                checks += 1
                if ordered(n1, n2):
                    continue
                flagged.add(key)
                kind = "write/write" if (w1 and w2) else "read/write"
                conflicts.append(
                    Conflict(
                        region=region,
                        kind=kind,
                        overlap_start=max(s1, s2),
                        overlap_end=min(e1, e2),
                        first=n1 if w1 else n2,
                        second=n2 if w1 else n1,
                    )
                )
            if truncated:
                break
        if truncated:
            break
    return ConflictScan(
        conflicts=tuple(conflicts), truncated=truncated, pruner=pruner
    )


def truncation_diagnostic(
    what: str, node_id: int | None
) -> Diagnostic:
    """The explicit ``race.scan-truncated`` WARNING: a capped fallback
    scan gave up before examining every candidate pair.  Unreachable on
    SP-structured graphs (the MHP path has no cap) — shared by the
    dynamic ``race.conflict`` and static ``static.race`` passes."""
    return Diagnostic(
        rule_id="race.scan-truncated",
        severity=Severity.WARNING,
        message=(
            f"{what} truncated after {MAX_PAIR_CHECKS} pair checks; "
            "remaining candidate pairs were NOT examined and real "
            "conflicts may be missing"
        ),
        node_id=node_id,
        fix_hint=(
            "the graph did not decompose as series-parallel, forcing "
            "the capped bitset fallback; raise max_pair_checks or "
            "restore series-parallel structure"
        ),
    )


def conflict_diagnostic(
    conflict: Conflict, rule_id: str, schedule_note: str
) -> Diagnostic:
    """Render one conflict as an ERROR diagnostic (shared with
    ``static.race``, which differs only in rule id and wording)."""
    writer = conflict.writer
    return Diagnostic(
        rule_id=rule_id,
        severity=Severity.ERROR,
        message=(
            f"logically-parallel grains {conflict.first.grain_id!r} and "
            f"{conflict.second.grain_id!r} have a {conflict.kind} conflict "
            f"on region {conflict.region!r} bytes "
            f"[{conflict.overlap_start}, {conflict.overlap_end}); "
            f"{schedule_note}"
        ),
        node_id=writer.node_id,
        grain_id=writer.grain_id,
        loc=writer.loc,
        fix_hint=_FIX_HINT,
    )


@register(
    "race.conflict",
    "happens-before data race / determinism audit",
    GRAPH_LAYER,
    reduced_too=False,  # grouped nodes lose per-fragment footprints
)
def check_races(graph: GrainGraph, reduced: bool) -> Iterator[Diagnostic]:
    if reduced:
        return
    scan = scan_conflicts(graph)
    for conflict in scan.conflicts:
        yield conflict_diagnostic(
            conflict,
            rule_id="race.conflict",
            schedule_note="the outcome is schedule-dependent (data race)",
        )
    if scan.truncated:
        yield truncation_diagnostic("race checking", graph.root_node_id)
