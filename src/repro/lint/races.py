"""Happens-before data-race and determinism checking (TASKPROF-style).

The grain graph's creation/continuation/join edges encode the *logical*
series-parallel structure of the program, independent of the schedule
that happened to run.  Two grain nodes with no directed path either way
are logically parallel: another schedule may execute them in the other
order or simultaneously.  If such nodes carry conflicting memory
footprints (same region, overlapping byte ranges, at least one write),
the program's result is schedule-dependent — a data race, and a
determinism violation the thread timeline can never show because *some*
interleaving always executed.

Chunks of one parallel for-loop are special-cased: the per-thread
book-keeping chains in the graph encode the accidental chunk-to-thread
assignment, so same-loop chunks are treated as pairwise logically
parallel regardless of chain paths.

This mechanically catches the missing-``TaskWait`` class of bugs: two
sibling tasks writing one region, or a parent reading a region its
un-synchronized child still writes.
"""

from __future__ import annotations

from typing import Iterator

from ..core.nodes import GrainGraph
from ..core.reachability import Reachability
from .diagnostics import Diagnostic, Severity
from .framework import GRAPH_LAYER, register

# Upper bound on pairwise conflict checks; beyond it the pass reports
# truncation (never silently) — real annotated programs stay far below.
MAX_PAIR_CHECKS = 250_000

_FIX_HINT = (
    "order the accesses (TaskWait() between the spawns, or a loop "
    "barrier) or make the footprints disjoint"
)


@register(
    "race.conflict",
    "happens-before data race / determinism audit",
    GRAPH_LAYER,
    reduced_too=False,  # grouped nodes lose per-fragment footprints
)
def check_races(graph: GrainGraph, reduced: bool) -> Iterator[Diagnostic]:
    if reduced:
        return
    # Collect footprint accesses per region: (start, end, write, node).
    by_region: dict[str, list[tuple[int, int, bool, object]]] = {}
    writes_in: set[str] = set()
    for node in graph.grain_nodes():
        for region, start, end in node.reads:
            if end > start:
                by_region.setdefault(region, []).append(
                    (start, end, False, node)
                )
        for region, start, end in node.writes:
            if end > start:
                by_region.setdefault(region, []).append(
                    (start, end, True, node)
                )
                writes_in.add(region)
    candidate_regions = {
        region: accesses
        for region, accesses in by_region.items()
        if region in writes_in and len(accesses) > 1
    }
    if not candidate_regions:
        return
    try:
        graph.topological_order()
    except ValueError:
        return  # structure.acyclic reports this; reachability needs a DAG
    sources = {
        node.node_id
        for accesses in candidate_regions.values()
        for _, _, _, node in accesses
    }
    reach = Reachability(graph, sources)
    flagged: set[tuple[str, str, str]] = set()
    checks = 0
    truncated = False
    for region in sorted(candidate_regions):
        accesses = sorted(
            candidate_regions[region],
            key=lambda item: (item[0], item[1], item[3].node_id),
        )
        for i, (s1, e1, w1, n1) in enumerate(accesses):
            for s2, e2, w2, n2 in accesses[i + 1:]:
                if s2 >= e1:
                    break  # sorted by start: no later range overlaps
                if not (w1 or w2):
                    continue
                if n1.grain_id == n2.grain_id:
                    continue  # a grain's own fragments are chained
                key = (region, *sorted((n1.grain_id or "", n2.grain_id or "")))
                if key in flagged:
                    continue
                if checks >= MAX_PAIR_CHECKS:
                    truncated = True
                    break
                checks += 1
                if _logically_ordered(reach, n1, n2):
                    continue
                flagged.add(key)
                kind = "write/write" if (w1 and w2) else "read/write"
                writer = n1 if w1 else n2
                yield Diagnostic(
                    rule_id="race.conflict",
                    severity=Severity.ERROR,
                    message=(
                        f"logically-parallel grains {n1.grain_id!r} and "
                        f"{n2.grain_id!r} have a {kind} conflict on region "
                        f"{region!r} bytes [{max(s1, s2)}, {min(e1, e2)}); "
                        "the outcome is schedule-dependent (data race)"
                    ),
                    node_id=writer.node_id,
                    grain_id=writer.grain_id,
                    loc=writer.loc,
                    fix_hint=_FIX_HINT,
                )
            if truncated:
                break
        if truncated:
            break
    if truncated:
        yield Diagnostic(
            rule_id="race.conflict",
            severity=Severity.WARNING,
            message=(
                f"race checking truncated after {MAX_PAIR_CHECKS} pair "
                "checks; remaining conflicts were not examined"
            ),
            node_id=graph.root_node_id,
        )


def _logically_ordered(reach: Reachability, n1, n2) -> bool:
    """Happens-before either way?  Same-loop chunks are never ordered:
    their graph chains encode the accidental schedule, not the logic."""
    if (
        n1.loop_id is not None
        and n1.loop_id == n2.loop_id
        and n1.grain_id != n2.grain_id
    ):
        return False
    return reach.ordered(n1.node_id, n2.node_id)
