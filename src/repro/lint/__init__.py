"""``repro.lint`` — diagnostic passes over traces and grain graphs.

A pluggable static-analysis framework in the DiscoPoP-explorer mold:
*passes* run over the three artifact layers (event trace, grain graph,
reduced graph) and emit structured :class:`Diagnostic` records instead of
raising on the first error.  Ships with:

- the seven Sec. 3.1 structural constraints (``structure.*``),
- six trace/runtime-invariant audits (``trace.*``),
- a TASKPROF-style happens-before data-race and determinism checker
  (``race.conflict``) over the memory footprints recorded by
  :class:`~repro.runtime.actions.Work` / ``Alloc``,
- the program-layer static passes (``static.*``) contributed by
  :mod:`repro.staticc`: work/span bounds, structural anti-patterns, and
  the all-schedule race certificate — no trace or simulation required,
- the parallelization-pattern detectors (``pattern.*``) contributed by
  :mod:`repro.advisor`: reduction, do-all, pipeline, task-parallelism,
  and geometric-decomposition opportunities, each an INFO finding with
  the blocking dependence and projected benefit.

Entry points: :func:`run_lint` (library), ``grain-graphs lint`` /
``grain-graphs check`` (CLI), ``profile_program(lint=True)`` (workflow).
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .framework import (
    GRAPH_LAYER,
    PROGRAM_LAYER,
    TRACE_LAYER,
    LintPass,
    all_passes,
    get_pass,
    register,
    run_lint,
)

# Importing the pass modules registers their passes.  The static passes
# live under repro.staticc and must come last: by then every lint
# submodule they import is complete, which keeps the lint <-> staticc
# import cycle safe in both entry orders.
from . import graph_passes, races, trace_passes  # noqa: E402,F401
from .baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    sort_diagnostics,
    write_baseline,
)
from .graph_passes import STRUCTURE_RULES, structure_diagnostics
from .reporters import format_summary, render_json, render_sarif, render_text
from ..staticc import passes as _static_passes  # noqa: E402,F401
from ..advisor import patterns as _pattern_passes  # noqa: E402,F401

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "LintPass",
    "GRAPH_LAYER",
    "PROGRAM_LAYER",
    "TRACE_LAYER",
    "STRUCTURE_RULES",
    "all_passes",
    "get_pass",
    "register",
    "run_lint",
    "structure_diagnostics",
    "format_summary",
    "render_json",
    "render_sarif",
    "render_text",
    "fingerprint",
    "sort_diagnostics",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]
