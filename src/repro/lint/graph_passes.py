"""Structural passes: the Sec. 3.1 grain-graph constraints.

These are the seven invariants ``repro.core.validate`` historically
enforced by raising on the first violation, ported to collecting passes
(:func:`~repro.core.validate.validate_graph` is now a thin shim over
:func:`structure_diagnostics`).  Message texts are kept identical to the
original validator so downstream matching keeps working.

1. ``structure.acyclic`` — the graph is a DAG.
2. ``structure.fork-arity`` — fork creation/continuation arity and
   creation-target kinds (team forks and grouped forks relax arity).
3. ``structure.join-inputs`` — every join receives at least one
   fragment/chain input.
4. ``structure.chain-order`` — book-keeping nodes continue to a chunk or
   a join; chunks continue to exactly one book-keeping node.
5. ``structure.edge-endpoints`` — creation edges go fork -> fragment
   (or fork -> book-keeping/join for team forks); join edges go
   fragment -> join.
6. ``structure.continuation-context`` — continuation edges stay within
   one task/loop context.
7. ``structure.grain-intervals`` — grain records exist for all grain
   nodes; execution intervals are non-overlapping and non-negative.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.nodes import EdgeKind, GGNode, GrainGraph, NodeKind
from .diagnostics import Diagnostic, Severity
from .framework import GRAPH_LAYER, register

# Canonical order for first-error semantics in the validate_graph shim:
# node-level checks precede edge checks, which precede grain checks,
# mirroring the original validator's control flow.
STRUCTURE_RULES = (
    "structure.acyclic",
    "structure.fork-arity",
    "structure.join-inputs",
    "structure.chain-order",
    "structure.edge-endpoints",
    "structure.continuation-context",
    "structure.grain-intervals",
)


def _error(rule_id: str, message: str, **kwargs: Any) -> Diagnostic:
    return Diagnostic(
        rule_id=rule_id, severity=Severity.ERROR, message=message, **kwargs
    )


@register("structure.acyclic", "graph is a DAG", GRAPH_LAYER)
def check_acyclic(graph: GrainGraph, reduced: bool) -> Iterator[Diagnostic]:
    try:
        graph.topological_order()
    except ValueError as exc:
        # Name one node stuck on a cycle so the finding has an anchor.
        indeg = {nid: graph.in_degree(nid) for nid in graph.nodes}
        stack = [nid for nid, d in indeg.items() if d == 0]
        while stack:
            nid = stack.pop()
            for succ, _ in graph.successors(nid):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    stack.append(succ)
        cyclic = sorted(nid for nid, d in indeg.items() if d > 0)
        yield _error(
            "structure.acyclic",
            str(exc),
            node_id=cyclic[0] if cyclic else None,
            fix_hint="a control-flow edge points backwards; check the "
            "builder's continuation/join wiring",
        )


@register("structure.fork-arity", "fork node arity", GRAPH_LAYER)
def check_fork_arity(graph: GrainGraph, reduced: bool) -> Iterator[Diagnostic]:
    for node in graph.nodes.values():
        if node.kind is not NodeKind.FORK:
            continue
        yield from _check_fork(graph, node, reduced)


def _check_fork(
    graph: GrainGraph, node: GGNode, reduced: bool
) -> Iterator[Diagnostic]:
    creations = [
        (dst, kind)
        for dst, kind in graph.successors(node.node_id)
        if kind is EdgeKind.CREATION
    ]
    anchor = dict(node_id=node.node_id, loc=node.loc)
    if node.team_fork or (reduced and node.is_group):
        if not creations:
            yield _error(
                "structure.fork-arity",
                f"team fork {node.node_id} creates nothing",
                **anchor,
            )
        return
    if reduced:
        if len(creations) != 1:
            yield _error(
                "structure.fork-arity",
                f"ungrouped fork {node.node_id} has {len(creations)} "
                "creation edges",
                **anchor,
            )
        return
    if len(creations) != 1:
        yield _error(
            "structure.fork-arity",
            f"fork {node.node_id} has {len(creations)} creation edges "
            "(must connect to a single child fragment)",
            **anchor,
        )
        return
    dst = graph.nodes[creations[0][0]]
    if dst.kind is not NodeKind.FRAGMENT:
        yield _error(
            "structure.fork-arity",
            f"fork {node.node_id} creation edge targets {dst.kind.value}",
            **anchor,
        )
    continuations = [
        dst
        for dst, kind in graph.successors(node.node_id)
        if kind is EdgeKind.CONTINUATION
    ]
    if len(continuations) > 1:
        yield _error(
            "structure.fork-arity",
            f"fork {node.node_id} has {len(continuations)} continuations",
            **anchor,
        )


@register("structure.join-inputs", "join node inputs", GRAPH_LAYER)
def check_join_inputs(graph: GrainGraph, reduced: bool) -> Iterator[Diagnostic]:
    for node in graph.nodes.values():
        if node.kind is not NodeKind.JOIN:
            continue
        incoming = graph.predecessors(node.node_id)
        if not incoming:
            yield _error(
                "structure.join-inputs",
                f"join {node.node_id} has no incoming edges",
                node_id=node.node_id,
            )
            continue
        has_grain_input = any(
            graph.nodes[src].kind
            in (NodeKind.FRAGMENT, NodeKind.BOOKKEEPING, NodeKind.CHUNK)
            for src, _ in incoming
        )
        if not has_grain_input:
            yield _error(
                "structure.join-inputs",
                f"join {node.node_id}: at least one fragment/chain must "
                "connect",
                node_id=node.node_id,
            )


@register("structure.chain-order", "book-keeping/chunk chaining", GRAPH_LAYER)
def check_chain_order(graph: GrainGraph, reduced: bool) -> Iterator[Diagnostic]:
    if reduced:
        # Reduced graphs group chunks as siblings of the grouped
        # book-keeping node; per-node chaining legitimately dissolves.
        return
    for node in graph.nodes.values():
        if node.kind is NodeKind.BOOKKEEPING:
            for dst, _ in graph.successors(node.node_id):
                succ = graph.nodes[dst]
                if succ.kind not in (NodeKind.CHUNK, NodeKind.JOIN):
                    yield _error(
                        "structure.chain-order",
                        f"book-keeping {node.node_id} continues to "
                        f"{succ.kind.value}; must be a chunk (iterations "
                        "remain) or a join (done)",
                        node_id=node.node_id,
                    )
        elif node.kind is NodeKind.CHUNK:
            succs = graph.successors(node.node_id)
            if len(succs) != 1:
                yield _error(
                    "structure.chain-order",
                    f"chunk {node.node_id} has {len(succs)} successors "
                    "(wants 1)",
                    node_id=node.node_id,
                    grain_id=node.grain_id,
                )
                continue
            succ = graph.nodes[succs[0][0]]
            if succ.kind is not NodeKind.BOOKKEEPING:
                yield _error(
                    "structure.chain-order",
                    f"chunk {node.node_id} must continue to a book-keeping "
                    f"node, found {succ.kind.value}",
                    node_id=node.node_id,
                    grain_id=node.grain_id,
                )


@register("structure.edge-endpoints", "creation/join edge endpoints", GRAPH_LAYER)
def check_edge_endpoints(
    graph: GrainGraph, reduced: bool
) -> Iterator[Diagnostic]:
    for edge in graph.edges:
        src, dst = graph.nodes[edge.src], graph.nodes[edge.dst]
        if edge.kind is EdgeKind.CREATION:
            if src.kind is not NodeKind.FORK:
                yield _error(
                    "structure.edge-endpoints",
                    f"creation edge from {src.kind.value}",
                    node_id=edge.src,
                )
            ok = dst.kind is NodeKind.FRAGMENT or (
                src.team_fork
                and dst.kind in (NodeKind.BOOKKEEPING, NodeKind.JOIN)
            )
            if not ok:
                yield _error(
                    "structure.edge-endpoints",
                    f"creation edge into {dst.kind.value}",
                    node_id=edge.dst,
                )
        elif edge.kind is EdgeKind.JOIN:
            if (
                src.kind is not NodeKind.FRAGMENT
                or dst.kind is not NodeKind.JOIN
            ):
                yield _error(
                    "structure.edge-endpoints",
                    f"join edge {src.kind.value} -> {dst.kind.value}",
                    node_id=edge.src,
                )


@register(
    "structure.continuation-context", "continuation context", GRAPH_LAYER
)
def check_continuation_context(
    graph: GrainGraph, reduced: bool
) -> Iterator[Diagnostic]:
    # Same-context rule: matching task ids for task-context edges;
    # loop-internal edges share the loop id.  Sanctioned seams:
    # fragment -> team fork and loop join -> fragment (the loop is
    # embedded in the enclosing implicit task's context).
    for edge in graph.edges:
        if edge.kind is not EdgeKind.CONTINUATION:
            continue
        src, dst = graph.nodes[edge.src], graph.nodes[edge.dst]
        if src.tid is not None and dst.tid is not None and src.tid != dst.tid:
            yield _error(
                "structure.continuation-context",
                f"continuation edge crosses task contexts "
                f"{src.tid} -> {dst.tid}",
                node_id=edge.src,
            )
        if (
            src.loop_id is not None
            and dst.loop_id is not None
            and src.loop_id != dst.loop_id
        ):
            yield _error(
                "structure.continuation-context",
                f"continuation edge crosses loop contexts "
                f"{src.loop_id} -> {dst.loop_id}",
                node_id=edge.src,
            )


@register("structure.grain-intervals", "grain interval sanity", GRAPH_LAYER)
def check_grain_intervals(
    graph: GrainGraph, reduced: bool
) -> Iterator[Diagnostic]:
    node_grain_ids = {
        node.grain_id for node in graph.grain_nodes() if node.grain_id
    }
    missing = node_grain_ids - set(graph.grains)
    if missing:
        yield _error(
            "structure.grain-intervals",
            f"grain nodes without grain records: {missing}",
            grain_id=sorted(missing)[0],
        )
    for gid, grain in graph.grains.items():
        intervals = sorted(grain.intervals)
        for (s1, e1, _), (s2, _, _) in zip(intervals, intervals[1:]):
            if s2 < e1:
                yield _error(
                    "structure.grain-intervals",
                    f"grain {gid} has overlapping execution intervals",
                    grain_id=gid,
                    loc=grain.loc,
                )
                break
        for s, e, _ in intervals:
            if e < s:
                yield _error(
                    "structure.grain-intervals",
                    f"grain {gid} has negative-length span",
                    grain_id=gid,
                    loc=grain.loc,
                )
                break


def structure_diagnostics(
    graph: GrainGraph, reduced: bool | None = None
) -> Iterator[Diagnostic]:
    """All structural diagnostics in canonical rule order.

    ``reduced=None`` infers the rule set from grouped-node presence, the
    same way the original validator did.  This is the entry point the
    :func:`~repro.core.validate.validate_graph` shim consumes.
    """
    if reduced is None:
        reduced = any(node.is_group for node in graph.nodes.values())
    from .framework import get_pass

    for rule_id in STRUCTURE_RULES:
        yield from get_pass(rule_id).fn(graph, reduced=reduced)
