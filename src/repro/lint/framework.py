"""The pluggable pass framework: registry, contexts, and the runner.

A *pass* is a function examining one artifact layer and yielding
:class:`~repro.lint.diagnostics.Diagnostic` records:

- ``layer="trace"`` passes receive the event :class:`~repro.profiler.
  trace.Trace` and audit runtime invariants (monotonic time, balanced
  events, one grain per worker at a time, ...),
- ``layer="graph"`` passes receive a :class:`~repro.core.nodes.
  GrainGraph` plus a ``reduced`` flag and audit the Sec. 3.1 structural
  constraints; unless registered with ``reduced_too=False`` they run
  again on the reduced graph (whose rule set legitimately relaxes fork
  arity and chunk chaining),
- ``layer="program"`` passes receive a :class:`~repro.staticc.model.
  StaticModel` — the symbolic series-parallel expansion of a program —
  and diagnose it *before any simulation* (work/span bounds, structural
  anti-patterns, the all-schedule race certificate).

Passes register themselves with :func:`register`; :func:`run_lint` runs
every registered pass (or an explicit subset) over whichever artifacts
the caller provides and returns a :class:`LintReport`.  DiscoPoP's
explorer popularized this shape — many small analyses over one
parallelism graph — and it is what lets the race detector, the structure
checks, and the static program passes coexist without touching the
runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..core.nodes import GrainGraph
from ..profiler.trace import Trace
from .diagnostics import Diagnostic, LintReport

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..staticc.model import StaticModel

TRACE_LAYER = "trace"
GRAPH_LAYER = "graph"
PROGRAM_LAYER = "program"

_LAYERS = (TRACE_LAYER, GRAPH_LAYER, PROGRAM_LAYER)

PassFn = Callable[..., Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintPass:
    """One registered diagnostic pass."""

    rule_id: str
    title: str
    layer: str  # TRACE_LAYER | GRAPH_LAYER | PROGRAM_LAYER
    fn: PassFn
    reduced_too: bool = True  # graph passes: also lint the reduced graph

    def __post_init__(self) -> None:
        if self.layer not in _LAYERS:
            raise ValueError(f"unknown lint layer {self.layer!r}")


_REGISTRY: dict[str, LintPass] = {}


def register(
    rule_id: str, title: str, layer: str, reduced_too: bool = True
) -> Callable[[PassFn], PassFn]:
    """Decorator registering a pass function under ``rule_id``."""

    def deco(fn: PassFn) -> PassFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = LintPass(
            rule_id=rule_id, title=title, layer=layer, fn=fn,
            reduced_too=reduced_too,
        )
        return fn

    return deco


def all_passes() -> list[LintPass]:
    """Registered passes in registration order."""
    return list(_REGISTRY.values())


def get_pass(rule_id: str) -> LintPass:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint pass {rule_id!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def graph_is_reduced(graph: GrainGraph) -> bool:
    """The same inference ``validate_graph`` uses: grouped nodes mark a
    reduced graph."""
    return any(node.is_group for node in graph.nodes.values())


def run_lint(
    trace: Optional[Trace] = None,
    graph: Optional[GrainGraph] = None,
    reduced_graph: Optional[GrainGraph] = None,
    passes: Optional[Sequence[LintPass | str]] = None,
    build_missing: bool = True,
    program: str = "",
    static_model: "Optional[StaticModel]" = None,
) -> LintReport:
    """Run passes over the provided artifact layers.

    With ``build_missing`` (default), the grain graph is built from the
    trace and the reduced graph from the grain graph when not supplied,
    so ``run_lint(trace=result.trace)`` audits all three dynamic layers.
    ``static_model`` (a :class:`~repro.staticc.model.StaticModel`)
    enables the ``program`` layer — no trace or simulation required.
    Layers that are absent simply skip their passes (recorded by
    omission from ``report.passes_run``).
    """
    if graph is None and trace is not None and build_missing:
        from ..core.builder import build_grain_graph

        graph = build_grain_graph(trace)
    if reduced_graph is None and graph is not None and build_missing:
        if not graph_is_reduced(graph):
            from ..core.reductions import reduce_graph

            reduced_graph, _ = reduce_graph(graph)
    selected: list[LintPass] = []
    for item in passes if passes is not None else all_passes():
        selected.append(get_pass(item) if isinstance(item, str) else item)
    if not program and trace is not None and trace.meta is not None:
        program = trace.meta.program
    if not program and static_model is not None:
        program = static_model.program
    report = LintReport(program=program)
    for lint_pass in selected:
        if lint_pass.layer == TRACE_LAYER:
            if trace is None:
                continue
            _run_one(report, lint_pass, "trace", lint_pass.fn(trace))
        elif lint_pass.layer == PROGRAM_LAYER:
            if static_model is None:
                continue
            _run_one(report, lint_pass, "program", lint_pass.fn(static_model))
        else:
            if graph is not None:
                _run_one(
                    report,
                    lint_pass,
                    "graph",
                    lint_pass.fn(graph, reduced=graph_is_reduced(graph)),
                )
            if reduced_graph is not None and lint_pass.reduced_too:
                _run_one(
                    report,
                    lint_pass,
                    "reduced",
                    lint_pass.fn(reduced_graph, reduced=True),
                )
    return report


def _run_one(
    report: LintReport,
    lint_pass: LintPass,
    artifact: str,
    found: Iterable[Diagnostic],
) -> None:
    report.passes_run.append((lint_pass.rule_id, artifact))
    report.extend(d.with_artifact(artifact) for d in found)
