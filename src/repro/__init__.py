"""Grain graphs: OpenMP performance analysis made easy — reproduction.

Reproduces Muddukrishna, Jonsson, Podobas & Brorsson, PPoPP 2016, on a
deterministic simulated OpenMP runtime (see DESIGN.md).  The typical entry
point is :mod:`repro.workflow`::

    from repro.workflow import profile_program
    from repro.apps import sort

    study = profile_program(sort.program(elements=1 << 18))
    print(study.report.summary())

Subpackages
-----------
- ``repro.machine`` — simulated NUMA machine (topology, caches, memory,
  contention, cost model).
- ``repro.runtime`` — simulated OpenMP 3.0 runtime (tasks, parallel for,
  schedulers, GCC/ICC/MIR flavors, discrete-event engine).
- ``repro.profiler`` — OMPT-like grain events and traces.
- ``repro.core`` — the grain graph itself: construction, validation,
  reductions, GraphML/SVG export.
- ``repro.metrics`` — derived metrics (parallel benefit, load balance,
  work deviation, instantaneous parallelism, scatter, MHU, critical path).
- ``repro.analysis`` — problem thresholds, highlighting views, reports.
- ``repro.binpack`` — minimum-cores bin packing (the Gecode stand-in).
- ``repro.apps`` — the paper's benchmark programs re-expressed for the
  simulated runtime, bugs included.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
