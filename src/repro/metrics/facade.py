"""One-call metric computation over a grain graph.

:func:`MetricSet.compute` evaluates every Sec. 3.2 metric and returns a
per-grain :class:`GrainMetrics` table plus the graph-level results
(critical path, load balance, parallelism profile).  A single-core
reference graph enables work deviation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.nodes import GrainGraph
from ..obs import registry as _obs
from .critical_path import CriticalPath, critical_path
from .load_balance import LoadBalance, load_balance
from .memory import MemoryReport, memory_report
from .parallel_benefit import parallel_benefit_all
from .parallelism import (
    IntervalPreset,
    ParallelismProfile,
    instantaneous_parallelism,
)
from .scatter import ScatterResult, scatter
from .work_deviation import WorkDeviationReport, work_deviation


@dataclass
class GrainMetrics:
    """All derived metrics for one grain (``None`` = not computable)."""

    gid: str
    exec_time: int
    parallel_benefit: float
    memory_hierarchy_utilization: float
    instantaneous_parallelism: int
    scatter: float
    work_deviation: Optional[float] = None
    on_critical_path: bool = False


@dataclass
class MetricSet:
    """Graph-level metric results plus the per-grain table."""

    graph: GrainGraph
    critical_path: CriticalPath
    load_balance: LoadBalance
    parallelism: ParallelismProfile
    memory: MemoryReport
    scatter: ScatterResult
    benefit: dict[str, float]
    deviation: Optional[WorkDeviationReport] = None
    per_grain: dict[str, GrainMetrics] = field(default_factory=dict)

    @classmethod
    def compute(
        cls,
        graph: GrainGraph,
        reference: GrainGraph | None = None,
        interval: int | IntervalPreset = IntervalPreset.MEDIAN_GRAIN_LENGTH,
        optimistic: bool = True,
    ) -> "MetricSet":
        with _obs.span("metrics.critical_path"):
            cp = critical_path(graph)
        with _obs.span("metrics.load_balance"):
            lb = load_balance(graph)
        with _obs.span("metrics.parallelism"):
            profile = instantaneous_parallelism(
                graph, interval=interval, optimistic=optimistic
            )
        with _obs.span("metrics.memory"):
            mem = memory_report(graph)
        with _obs.span("metrics.scatter"):
            sc = scatter(graph)
        with _obs.span("metrics.parallel_benefit"):
            benefit = parallel_benefit_all(graph)
        if reference:
            with _obs.span("metrics.work_deviation"):
                deviation = work_deviation(graph, reference)
        else:
            deviation = None
        cp_grains = cp.grain_ids(graph)
        per_grain = {}
        for gid, grain in graph.grains.items():
            per_grain[gid] = GrainMetrics(
                gid=gid,
                exec_time=grain.exec_time,
                parallel_benefit=benefit[gid],
                memory_hierarchy_utilization=mem.mhu[gid],
                instantaneous_parallelism=profile.per_grain.get(gid, 1),
                scatter=sc.per_grain.get(gid, 0.0),
                work_deviation=(
                    deviation.deviation.get(gid) if deviation else None
                ),
                on_critical_path=gid in cp_grains,
            )
        return cls(
            graph=graph,
            critical_path=cp,
            load_balance=lb,
            parallelism=profile,
            memory=mem,
            scatter=sc,
            benefit=benefit,
            deviation=deviation,
            per_grain=per_grain,
        )
