"""Load balance (Sec. 3.2).

"Load balance is the ratio between the length of the longest grain and
the median length of all chains of consecutive grains in the unreduced
graph.  Load balance in Figure 3g is the ratio of the length of longest
grain 9-12 to the median length of the two chains."

For parallel for-loops the chains are exactly the per-thread sequences of
chunks (chunk -> book-keeping -> chunk ...), which is what Fig. 3g shows
and what the Freqmine analysis (Fig. 10: 35.5 on 48 cores, 1.06 on 7)
relies on.  The paper "generalizes load balance to include tasks" without
spelling out the task-side chain rule; we use the natural reading where a
chain is a maximal sequence of grains linked through non-grain nodes with
a unique successor and unique predecessor — each task grain then forms a
singleton chain (forks branch, so task grains never chain), making task
load balance the ratio of the longest grain to the median grain.  This
interpretation is recorded in DESIGN.md.

A value "much greater than one indicates presence of at least one grain
whose work time approaches the makespan of the parallel section"; about
one means balanced load.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core.grains import Grain, GrainKind
from ..core.nodes import GrainGraph


@dataclass(frozen=True)
class LoadBalance:
    value: float
    longest_grain: str
    longest_grain_cycles: int
    median_chain_cycles: float
    num_chains: int
    chain_lengths: tuple[int, ...]

    @property
    def balanced(self) -> bool:
        return self.value <= 1.0 + 1e-9


def chains(graph: GrainGraph, loop_id: int | None = None) -> list[list[Grain]]:
    """Chain decomposition of the graph's grains.

    Chunks chain per loop instance and team thread; task grains are
    singleton chains (see module docstring).  ``loop_id`` restricts the
    result to one loop instance (plus no task grains).
    """
    out: list[list[Grain]] = []
    by_thread: dict[tuple[int, int], list[Grain]] = {}
    for grain in graph.grains.values():
        if grain.kind is GrainKind.CHUNK:
            if loop_id is not None and grain.loop_id != loop_id:
                continue
            key = (grain.loop_id or 0, grain.thread or 0)
            by_thread.setdefault(key, []).append(grain)
        elif loop_id is None:
            out.append([grain])
    for key in sorted(by_thread):
        chain = sorted(by_thread[key], key=lambda g: g.first_start)
        out.append(chain)
    return out


def load_balance(graph: GrainGraph, loop_id: int | None = None) -> LoadBalance:
    """Load balance of the whole graph or of one loop instance."""
    all_chains = chains(graph, loop_id=loop_id)
    if not all_chains:
        return LoadBalance(
            value=1.0, longest_grain="", longest_grain_cycles=0,
            median_chain_cycles=0.0, num_chains=0, chain_lengths=(),
        )
    grains = [grain for chain in all_chains for grain in chain]
    longest = max(grains, key=lambda g: (g.exec_time, g.gid))
    chain_lengths = tuple(
        sum(g.exec_time for g in chain) for chain in all_chains
    )
    median_chain = statistics.median(chain_lengths)
    value = longest.exec_time / median_chain if median_chain > 0 else float("inf")
    return LoadBalance(
        value=value,
        longest_grain=longest.gid,
        longest_grain_cycles=longest.exec_time,
        median_chain_cycles=median_chain,
        num_chains=len(all_chains),
        chain_lengths=chain_lengths,
    )
