"""Work deviation / work inflation (Sec. 3.2).

"Work deviation is the change in execution time between single core and
multicore grain execution.  Work deviation is beneficial when it is less
than one and problematic when it is greater than one. ... We compute work
deviation per grain and refer to problematic work deviation as work
inflation."

The join relies on schedule-independent grain identity: task grains match
across runs by creation path.  Chunk grains only match when the loop team
sizes agree ("for for-loop based programs the shape of the graph is
dependent on the number of threads used during profiling"), so unmatched
chunks are skipped and counted.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..core.nodes import GrainGraph


@dataclass
class WorkDeviationReport:
    """Per-grain deviation of a multicore run against a 1-core reference."""

    deviation: dict[str, float] = field(default_factory=dict)
    unmatched: int = 0

    def inflated(self, threshold: float = 2.0) -> dict[str, float]:
        """Grains whose deviation exceeds ``threshold`` (work inflation).

        The paper's default problem threshold is 2; the 359.botsspar
        analysis "gradually lowers the work deviation problem threshold
        from 2 to 1.2" to expose wide-spread inflation.
        """
        return {g: d for g, d in self.deviation.items() if d > threshold}

    def inflated_fraction(self, threshold: float = 2.0) -> float:
        if not self.deviation:
            return 0.0
        return len(self.inflated(threshold)) / len(self.deviation)

    def median(self) -> float:
        if not self.deviation:
            return 1.0
        return statistics.median(self.deviation.values())


def work_deviation(
    multicore: GrainGraph, single_core: GrainGraph
) -> WorkDeviationReport:
    """Join the two runs' grain tables by grain id and compute per-grain
    deviation = multicore execution time / single-core execution time."""
    report = WorkDeviationReport()
    reference = single_core.grains
    for gid, grain in multicore.grains.items():
        ref = reference.get(gid)
        if ref is None or ref.exec_time == 0:
            report.unmatched += 1
            continue
        report.deviation[gid] = grain.exec_time / ref.exec_time
    return report
