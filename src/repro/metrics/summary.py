"""Per-source-definition summaries (the Fig. 7 view).

"FFT performance grouped by definition in source files": for each task or
loop definition (source location), aggregate instance counts, total work,
work share, and problem prevalence.  The 359.botsspar walkthrough sorts
"task definitions by creation count and work inflation" to pin-point
``sparselu.c:246(bmod)``; this module provides exactly those orderings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.nodes import GrainGraph
from .parallel_benefit import parallel_benefit


@dataclass
class DefinitionSummary:
    definition: str
    kind: str
    count: int = 0
    total_exec_cycles: int = 0
    total_cost_cycles: float = 0.0
    low_benefit_count: int = 0
    poor_mhu_count: int = 0
    inflated_count: int = 0
    work_share: float = 0.0  # of total program grain work

    @property
    def low_benefit_fraction(self) -> float:
        return self.low_benefit_count / self.count if self.count else 0.0

    @property
    def poor_mhu_fraction(self) -> float:
        return self.poor_mhu_count / self.count if self.count else 0.0

    @property
    def mean_exec_cycles(self) -> float:
        return self.total_exec_cycles / self.count if self.count else 0.0


def per_definition_summary(
    graph: GrainGraph,
    benefit_threshold: float = 1.0,
    mhu_threshold: float = 2.0,
    deviation: dict[str, float] | None = None,
    deviation_threshold: float = 2.0,
) -> list[DefinitionSummary]:
    """Aggregate grains by source definition, ordered by work share
    descending (the paper's first-optimization-candidate ordering)."""
    table: dict[str, DefinitionSummary] = {}
    total_work = sum(g.exec_time for g in graph.grains.values()) or 1
    for gid, grain in graph.grains.items():
        row = table.get(grain.definition)
        if row is None:
            row = DefinitionSummary(
                definition=grain.definition, kind=grain.kind.value
            )
            table[grain.definition] = row
        row.count += 1
        row.total_exec_cycles += grain.exec_time
        row.total_cost_cycles += grain.parallelization_cost
        if parallel_benefit(grain) < benefit_threshold:
            row.low_benefit_count += 1
        mhu = grain.memory_hierarchy_utilization
        if math.isfinite(mhu) and mhu < mhu_threshold:
            row.poor_mhu_count += 1
        if deviation is not None and deviation.get(gid, 0.0) > deviation_threshold:
            row.inflated_count += 1
    for row in table.values():
        row.work_share = row.total_exec_cycles / total_work
    return sorted(
        table.values(), key=lambda r: (-r.total_exec_cycles, r.definition)
    )


def format_definition_table(rows: list[DefinitionSummary]) -> str:
    """Render the per-definition table as aligned text."""
    header = (
        f"{'definition':40} {'kind':6} {'count':>8} {'work%':>7} "
        f"{'mean cyc':>12} {'lowPB%':>7} {'poorMHU%':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.definition[:40]:40} {row.kind:6} {row.count:>8} "
            f"{100 * row.work_share:>6.1f}% {row.mean_exec_cycles:>12.0f} "
            f"{100 * row.low_benefit_fraction:>6.1f}% "
            f"{100 * row.poor_mhu_fraction:>8.1f}%"
        )
    return "\n".join(lines)
