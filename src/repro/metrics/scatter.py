"""Scatter (Sec. 3.2).

"Scatter is the median pair-wise distance in the system topology between
cores executing sibling grains.  Distances are obtained from the NUMA
distance table or by subtracting core identifiers in some topologies.
High scatter between grains that share data can lead to poor memory
hierarchy utilization."

Sibling groups are tasks created by the same parent, or chunks of the
same loop instance.  Every grain in a group is assigned the group's
median pairwise distance.  Sec. 3.3 flags scatter "farther than the
number of cores in a CPU socket" — the Strassen analysis (Fig. 11c/d)
reads this as off-socket execution (more than 12 cores apart on the
authors' machine), so the core-id convention compares against
``cores_per_socket`` and the NUMA convention against the same-socket
distance-table entry.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.nodes import GrainGraph
from ..machine.topology import MachineTopology


def topology_from_meta(meta) -> MachineTopology:
    """Reconstruct the machine topology recorded in trace metadata."""
    sockets = max(1, meta.num_cores_total // max(1, meta.cores_per_socket))
    nodes_per_socket = max(1, meta.num_numa_nodes // sockets)
    return MachineTopology(
        sockets=sockets,
        cores_per_socket=meta.cores_per_socket or meta.num_cores_total or 1,
        nodes_per_socket=nodes_per_socket,
        frequency_hz=meta.frequency_hz,
        name=meta.machine or "from-meta",
    )


@dataclass(frozen=True)
class ScatterResult:
    per_grain: dict[str, float]
    per_group: dict[str, float]

    def scattered(self, threshold: float) -> dict[str, float]:
        return {g: s for g, s in self.per_grain.items() if s > threshold}


def scatter(
    graph: GrainGraph,
    topology: MachineTopology | None = None,
    convention: str = "numa",
) -> ScatterResult:
    """Median pairwise core distance per sibling group.

    ``convention`` is ``"numa"`` (distance table) or ``"core_id"``
    (subtracting core identifiers).
    """
    if topology is None:
        topology = topology_from_meta(graph.meta)
    if convention == "numa":
        dist = topology.core_distance
    elif convention == "core_id":
        dist = topology.core_id_distance
    else:
        raise ValueError(f"unknown distance convention {convention!r}")

    groups: dict[str, list[str]] = {}
    for gid, grain in graph.grains.items():
        if grain.sibling_group:
            groups.setdefault(grain.sibling_group, []).append(gid)

    per_group: dict[str, float] = {}
    per_grain: dict[str, float] = {}
    for group, members in groups.items():
        cores = [graph.grains[gid].primary_core for gid in sorted(members)]
        if len(cores) < 2:
            per_group[group] = 0.0
        else:
            per_group[group] = _median_pairwise_distance(cores, dist)
        for gid in members:
            per_grain[gid] = per_group[group]
    return ScatterResult(per_grain=per_grain, per_group=per_group)


def _median_pairwise_distance(cores: list[int], dist) -> float:
    """Median over all C(n, 2) pairwise distances without materializing
    them: distances depend only on the (few) distinct cores, so weight
    each distinct core pair by its multiplicity and take the weighted
    median.  Equals ``statistics.median`` of the expanded pair list —
    which is quadratic in the sibling-group size and dominated analysis
    of chunk-heavy programs like Freqmine."""
    counts = Counter(cores)
    distinct = sorted(counts)
    weighted: list[tuple[float, int]] = []
    for i, a in enumerate(distinct):
        if counts[a] > 1:
            weighted.append((dist(a, a), counts[a] * (counts[a] - 1) // 2))
        for b in distinct[i + 1:]:
            weighted.append((dist(a, b), counts[a] * counts[b]))
    weighted.sort()
    total = sum(weight for _, weight in weighted)
    below = total // 2  # pairs strictly below the upper median
    cumulative = 0
    lower = None
    for value, weight in weighted:
        cumulative += weight
        if total % 2 == 0 and lower is None and cumulative >= below:
            lower = value
        if cumulative > below:
            upper = value
            return float(upper if total % 2 else (lower + upper) / 2.0)
    raise AssertionError("unreachable: weights exhausted before median")
