"""Instantaneous parallelism (Sec. 3.2).

"Instantaneous parallelism is parallelism exposed by the program at
different times during execution.  Low instantaneous parallelism means
cores idle because no work is available. ... The metric is calculated by
counting the number of grains whose execution overlaps with intervals of
program execution time.  Interval size is a balance between accuracy and
post-processing time.  We provide the minimum grain length, the smallest
difference between when a grain starts and another grain ends, and the
median grain length as default choices.  The metric comes in two flavors:
optimistic includes all grains with any overlap of the interval, and
conservative only includes grains with full overlap.  Instantaneous
parallelism of a grain is the smallest instantaneous parallelism among
all its overlapping time intervals."
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field

import numpy as np

from ..core.nodes import GrainGraph


class IntervalPreset(enum.Enum):
    MIN_GRAIN_LENGTH = "min_grain_length"
    SMALLEST_GAP = "smallest_gap"  # smallest start-vs-end difference
    MEDIAN_GRAIN_LENGTH = "median_grain_length"


@dataclass
class ParallelismProfile:
    """The parallelism timeline plus per-grain minima."""

    interval_cycles: int
    timeline: np.ndarray  # parallelism per interval (int array)
    per_grain: dict[str, int] = field(default_factory=dict)
    optimistic: bool = True

    @property
    def peak(self) -> int:
        return int(self.timeline.max()) if self.timeline.size else 0

    @property
    def mean(self) -> float:
        return float(self.timeline.mean()) if self.timeline.size else 0.0

    def fraction_below(self, cores: int) -> float:
        """Fraction of program time intervals whose parallelism is below
        ``cores`` — the "less than the number of cores available" signal
        of the Sort analysis (Fig. 5a)."""
        if not self.timeline.size:
            return 0.0
        return float((self.timeline < cores).mean())

    def grains_below(self, cores: int) -> dict[str, int]:
        return {g: p for g, p in self.per_grain.items() if p < cores}


def _interval_size(graph: GrainGraph, preset: IntervalPreset) -> int:
    spans = [
        end - start
        for grain in graph.grains.values()
        for start, end, _ in grain.intervals
        if end > start
    ]
    if not spans:
        return 1
    if preset is IntervalPreset.MIN_GRAIN_LENGTH:
        return max(1, min(spans))
    if preset is IntervalPreset.MEDIAN_GRAIN_LENGTH:
        return max(1, int(statistics.median(spans)))
    # SMALLEST_GAP: smallest positive difference between any grain start
    # and any grain end.
    starts = sorted(
        {s for grain in graph.grains.values() for s, _, _ in grain.intervals}
    )
    ends = sorted(
        {e for grain in graph.grains.values() for _, e, _ in grain.intervals}
    )
    best: int | None = None
    j = 0
    for start in starts:
        while j < len(ends) and ends[j] <= start:
            j += 1
        if j < len(ends):
            gap = ends[j] - start
            if gap > 0 and (best is None or gap < best):
                best = gap
    return max(1, best or 1)


def instantaneous_parallelism(
    graph: GrainGraph,
    interval: int | IntervalPreset = IntervalPreset.MEDIAN_GRAIN_LENGTH,
    optimistic: bool = True,
) -> ParallelismProfile:
    """Compute the parallelism timeline and each grain's minimum.

    ``interval`` is a cycle count or one of the paper's presets.
    """
    if isinstance(interval, IntervalPreset):
        delta = _interval_size(graph, interval)
    else:
        delta = int(interval)
        if delta < 1:
            raise ValueError("interval must be at least one cycle")

    makespan = max(
        (grain.last_end for grain in graph.grains.values() if grain.intervals),
        default=0,
    )
    n_cells = max(1, -(-makespan // delta))
    diff = np.zeros(n_cells + 1, dtype=np.int64)

    # Cell index ranges per grain interval.
    cell_ranges: dict[str, list[tuple[int, int]]] = {}
    for gid, grain in graph.grains.items():
        ranges = []
        for start, end, _ in grain.intervals:
            if end <= start:
                continue
            if optimistic:
                lo = start // delta
                hi = -(-end // delta)  # ceil: any overlap counts
            else:
                lo = -(-start // delta)  # ceil: only fully covered cells
                hi = end // delta
                if hi <= lo:
                    continue
            diff[lo] += 1
            diff[hi] -= 1
            ranges.append((lo, hi))
        cell_ranges[gid] = ranges
    timeline = np.cumsum(diff[:-1])

    per_grain: dict[str, int] = {}
    for gid, ranges in cell_ranges.items():
        if not ranges:
            # Grain contributed to no interval (conservative flavor with a
            # grain shorter than the interval): parallelism one (itself).
            per_grain[gid] = 1
            continue
        per_grain[gid] = int(
            min(timeline[lo:hi].min() for lo, hi in ranges)
        )
    return ParallelismProfile(
        interval_cycles=delta,
        timeline=timeline,
        per_grain=per_grain,
        optimistic=optimistic,
    )
