"""Memory-hierarchy metrics (Sec. 3.2).

Memory hierarchy utilization is "a ratio of processor cycles spent
performing computation to stalled cycles waiting for data"; Sec. 3.3
flags utilization below two as a likely problem.  Cache miss ratios are
also surfaced, matching the "standard metrics" the paper annotates the
graph with.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

from ..core.nodes import GrainGraph


@dataclass
class MemoryReport:
    mhu: dict[str, float] = field(default_factory=dict)
    miss_ratio: dict[str, float] = field(default_factory=dict)
    remote_fraction: dict[str, float] = field(default_factory=dict)

    def poor_mhu(self, threshold: float = 2.0) -> dict[str, float]:
        return {g: v for g, v in self.mhu.items() if v < threshold}

    def poor_mhu_fraction(self, threshold: float = 2.0) -> float:
        if not self.mhu:
            return 0.0
        return len(self.poor_mhu(threshold)) / len(self.mhu)

    def median_mhu(self) -> float:
        finite = [v for v in self.mhu.values() if math.isfinite(v)]
        if not finite:
            return float("inf")
        return statistics.median(finite)


def memory_report(graph: GrainGraph) -> MemoryReport:
    """Per-grain memory behaviour from the aggregated counters."""
    report = MemoryReport()
    for gid, grain in graph.grains.items():
        counters = grain.counters
        report.mhu[gid] = counters.memory_hierarchy_utilization
        report.miss_ratio[gid] = counters.miss_ratio
        if counters.llc_misses > 0:
            report.remote_fraction[gid] = counters.remote_lines / counters.llc_misses
        else:
            report.remote_fraction[gid] = 0.0
    return report
