"""Derived metrics (Sec. 3.2).

Each metric lives in its own module; :mod:`.facade` bundles them into one
:class:`MetricSet` computed per grain:

- critical path (:mod:`.critical_path`),
- parallel benefit (:mod:`.parallel_benefit`),
- load balance (:mod:`.load_balance`),
- work deviation / inflation (:mod:`.work_deviation`),
- instantaneous parallelism (:mod:`.parallelism`),
- scatter (:mod:`.scatter`),
- memory-hierarchy utilization and miss ratios (:mod:`.memory`),
- per-source-definition summaries (:mod:`.summary`).
"""

from .critical_path import critical_path, CriticalPath
from .parallel_benefit import parallel_benefit, parallel_benefit_all
from .load_balance import load_balance, chains, LoadBalance
from .work_deviation import work_deviation, WorkDeviationReport
from .parallelism import (
    instantaneous_parallelism,
    ParallelismProfile,
    IntervalPreset,
)
from .scatter import scatter, topology_from_meta
from .memory import memory_report, MemoryReport
from .summary import per_definition_summary, DefinitionSummary
from .facade import MetricSet, GrainMetrics

__all__ = [
    "critical_path",
    "CriticalPath",
    "parallel_benefit",
    "parallel_benefit_all",
    "load_balance",
    "chains",
    "LoadBalance",
    "work_deviation",
    "WorkDeviationReport",
    "instantaneous_parallelism",
    "ParallelismProfile",
    "IntervalPreset",
    "scatter",
    "topology_from_meta",
    "memory_report",
    "MemoryReport",
    "per_definition_summary",
    "DefinitionSummary",
    "MetricSet",
    "GrainMetrics",
]
