"""Parallel benefit (Sec. 3.2).

"Parallel benefit is a grain's execution time divided by the
parallelization costs borne by the grain's parent.  The metric aids
inlining and cutoff decisions by quantifying whether parallelization is
beneficial so grains with low parallel benefit should be executed
serially to reduce overhead.  Parallelization cost of a grain is the sum
of its creation time and average time spent by the grain's parent in
synchronizing with all siblings.  Parallelization cost for chunks uses
book-keeping cost instead of child creation time."

Values below 1.0 mean the grain cost more to parallelize than it computed
(Sec. 3.3 flags benefit < 1 as a likely problem).  The root grain has no
parallelization cost; its benefit is infinite by convention.
"""

from __future__ import annotations

from ..core.grains import Grain
from ..core.nodes import GrainGraph


def parallel_benefit(grain: Grain) -> float:
    """Execution time over parallelization cost for one grain."""
    cost = grain.parallelization_cost
    if cost <= 0:
        return float("inf")
    return grain.exec_time / cost


def parallel_benefit_all(graph: GrainGraph) -> dict[str, float]:
    """Parallel benefit for every grain in the graph."""
    return {gid: parallel_benefit(g) for gid, g in graph.grains.items()}


def low_benefit_fraction(graph: GrainGraph, threshold: float = 1.0) -> float:
    """Fraction of grains whose benefit is below ``threshold`` (the
    "48% with low parallel benefit" style statistic of Fig. 5b)."""
    values = parallel_benefit_all(graph)
    if not values:
        return 0.0
    low = sum(1 for v in values.values() if v < threshold)
    return low / len(values)
