"""Critical path of the grain graph.

"Both edges and node borders are colored red if they are on the critical
path of the grain graph" (Sec. 3.1).  The critical path is the heaviest
path through the DAG with node weights equal to node durations (fragments,
chunks, forks, book-keeping; join nodes contribute their wait span).  It
is "an important filter for selecting first-optimization candidates"
(Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.nodes import GrainGraph


@dataclass
class CriticalPath:
    """The heaviest node-weighted path."""

    node_ids: list[int]
    length_cycles: int
    edge_set: set[tuple[int, int]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.edge_set:
            self.edge_set = set(zip(self.node_ids, self.node_ids[1:]))

    @property
    def nodes(self) -> set[int]:
        return set(self.node_ids)

    def grain_ids(self, graph: GrainGraph) -> set[str]:
        """Grains with at least one node on the critical path."""
        on_path = self.nodes
        return {
            node.grain_id
            for node in graph.nodes.values()
            if node.node_id in on_path and node.grain_id
        }


def critical_path(
    graph: GrainGraph,
    weights: Optional[Mapping[int, int]] = None,
) -> CriticalPath:
    """Longest (duration-weighted) path via topological dynamic program.

    Join nodes carry zero path weight: their span is *waiting*, which
    overlaps the execution of the children arriving at the join, so
    counting it would double-book time and let the path exceed the
    makespan.  Forks (creation cost), book-keeping, fragments and chunks
    carry their durations, hence the invariant ``length <= makespan``.

    ``weights`` overrides the duration of the listed node ids (joins stay
    zero regardless).  This is what the causal what-if engine
    (:mod:`repro.advisor.whatif`) uses to re-span a static graph under a
    "node runs k× faster" scenario without mutating it; an empty or
    identity mapping reproduces the unmodified path exactly, since the
    dynamic program and its tie-breaks are unchanged.
    """
    from ..core.nodes import NodeKind

    order = graph.topological_order()
    best: dict[int, int] = {}
    pred: dict[int, int | None] = {}
    for nid in order:
        node = graph.nodes[nid]
        if node.kind is NodeKind.JOIN:
            weight = 0
        elif weights is not None and nid in weights:
            weight = weights[nid]
        else:
            weight = node.duration
        incoming = graph.predecessors(nid)
        if incoming:
            # max over predecessors, ties broken by smallest node id for
            # determinism.
            best_src, best_val = None, -1
            for src, _ in incoming:
                val = best[src]
                if val > best_val or (
                    val == best_val and (best_src is None or src < best_src)
                ):
                    best_src, best_val = src, val
            best[nid] = best_val + weight
            pred[nid] = best_src
        else:
            best[nid] = weight
            pred[nid] = None
    if not best:
        return CriticalPath(node_ids=[], length_cycles=0)
    end = max(sorted(best), key=lambda nid: best[nid])
    path: list[int] = []
    cursor: int | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = pred[cursor]
    path.reverse()
    return CriticalPath(node_ids=path, length_cycles=best[end])
