"""The synchronous analysis core behind the serve endpoints.

One :class:`AnalysisService` per server process wraps the same
primitives the CLI uses — :func:`repro.runtime.api.run_program`, the
:class:`~repro.exec.cache.RunCache` artifact tier, :func:`run_lint`,
:func:`check_program`, :func:`advise_program` — behind methods that

- translate every user-input failure (unknown program/flavor/spec,
  bad what-if target) into a :class:`~repro.serve.protocol.ServeError`
  carrying the same friendly one-liner the CLI prints before exit 2;
- key every simulation by :class:`~repro.exec.cache.RunKey` digest, the
  identity the async layer coalesces on; and
- stay thread-safe: methods here run inside the server's worker thread
  pool, with the :class:`~repro.serve.coalesce.Coalescer` guaranteeing
  at most one in-flight execution per digest, so the only shared
  mutable state is a lock-guarded memo of completed runs.

The memo means a repeated point is free even with no disk cache
attached; with one, artifacts additionally survive restarts and are
shared with ``grain-graphs study`` runs pointed at the same directory.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Any, Optional, Sequence

from ..apps.registry import PROGRAMS
from ..exec.cache import RunCache, RunKey
from ..exec.fingerprint import code_fingerprint
from ..exec.runner import MatrixPoint
from ..lint import run_lint
from ..machine import Machine, MachineConfig
from ..obs import registry as _obs
from ..profiler.recorder import ProfilerConfig
from ..runtime.api import Program, run_program
from ..runtime.engine import RunResult
from ..runtime.flavors import RuntimeFlavor, flavor_by_name
from .protocol import ServeError


@dataclass
class PointRun:
    """One resolved, executed study point."""

    point: MatrixPoint
    digest: str
    result: RunResult
    #: ``"engine"`` (simulated now), ``"cache"`` (disk artifact), or
    #: ``"memo"`` (already run by this server process).
    source: str

    def record(self) -> dict[str, Any]:
        """The JSONL line reported for this point."""
        return {
            "program": self.point.program,
            "flavor": self.point.flavor,
            "threads": self.point.threads,
            "digest": self.digest,
            "makespan_cycles": self.result.makespan_cycles,
            "source": self.source,
            "stats": asdict(self.result.stats),
        }


class AnalysisService:
    """Sync, thread-safe analysis facade for the serve layer."""

    def __init__(
        self,
        cache: RunCache | None = None,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
    ) -> None:
        self.cache = cache
        self.machine_config = machine_config
        self.profiler = profiler
        self._fingerprint = (
            cache.fingerprint if cache is not None else code_fingerprint()
        )
        self._memo: dict[str, PointRun] = {}
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Resolution (every failure is a structured, friendly ServeError)
    # ------------------------------------------------------------------
    def programs(self) -> list[str]:
        return sorted(PROGRAMS)

    def resolve_program(self, point: MatrixPoint) -> Program:
        try:
            return point.resolve()
        except KeyError:
            raise ServeError(
                404,
                f"unknown program {point.program!r}; GET /v1/programs "
                "lists the registry",
            ) from None
        except TypeError as exc:
            raise ServeError(
                400, f"bad kwargs for program {point.program!r}: {exc}"
            ) from None

    def resolve_flavor(self, name: str) -> RuntimeFlavor:
        try:
            return flavor_by_name(name)
        except ValueError as exc:
            raise ServeError(400, str(exc)) from None

    def parse_point(self, spec: Any) -> MatrixPoint:
        """A submitted point: either a ``"PROG[:FLAVOR[:THREADS]]"``
        spec string or a ``{"program": ..., "flavor": ..., "threads":
        ...}`` object."""
        try:
            if isinstance(spec, str):
                point = MatrixPoint.parse(spec)
            elif isinstance(spec, dict):
                unknown = set(spec) - {"program", "flavor", "threads"}
                if unknown:
                    raise ValueError(
                        "unknown point field(s) "
                        f"{', '.join(sorted(unknown))}; want program, "
                        "flavor, threads"
                    )
                if "program" not in spec:
                    raise ValueError("point object needs a 'program'")
                point = MatrixPoint(
                    program=str(spec["program"]),
                    flavor=str(spec.get("flavor", "MIR")).upper(),
                    threads=int(spec.get("threads", 48)),
                )
            else:
                raise ValueError(
                    f"bad point {spec!r}: want a spec string or object"
                )
        except ValueError as exc:
            raise ServeError(400, str(exc)) from None
        if point.threads < 1:
            raise ServeError(
                400, f"bad point {point.program!r}: threads must be >= 1"
            )
        return point

    # ------------------------------------------------------------------
    # Point execution (the coalesced unit)
    # ------------------------------------------------------------------
    def key_for(self, point: MatrixPoint) -> tuple[RunKey, Program]:
        """Resolve the point and compute its cache identity (cheap —
        no simulation)."""
        program = self.resolve_program(point)
        flavor = self.resolve_flavor(point.flavor)
        key = RunKey.for_run(
            program, flavor, point.threads,
            machine_config=self.machine_config,
            profiler=self.profiler,
            fingerprint=self._fingerprint,
        )
        return key, program

    def run_point(self, point: MatrixPoint) -> PointRun:
        """Execute one point: memo -> disk cache -> engine.

        Called from worker threads; the async layer's coalescer ensures
        at most one thread is in here per digest at a time.
        """
        key, program = self.key_for(point)
        digest = key.digest()
        with self._memo_lock:
            hit = self._memo.get(digest)
        if hit is not None:
            return PointRun(point, digest, hit.result, source="memo")
        flavor = self.resolve_flavor(point.flavor)
        source = "engine"
        result: Optional[RunResult] = None
        if self.cache is not None:
            cached = self.cache.lookup(key)
            if cached is not None:
                from ..exec.runner import result_from_cached

                result = result_from_cached(cached, self.machine_config)
                source = "cache"
        if result is None:
            machine = (
                Machine(self.machine_config)
                if self.machine_config else Machine.paper_testbed()
            )
            with _obs.span("exec.simulate"):
                result = run_program(
                    program, flavor=flavor, num_threads=point.threads,
                    machine=machine, profiler=self.profiler,
                )
            _obs.count("exec.simulated")
            if self.cache is not None:
                self.cache.store(key, result)
        run = PointRun(point, digest, result, source=source)
        with self._memo_lock:
            self._memo.setdefault(digest, run)
        return run

    # ------------------------------------------------------------------
    # Analysis endpoints' sync bodies
    # ------------------------------------------------------------------
    def lint_payload(self, run: PointRun) -> dict[str, Any]:
        with _obs.span("serve.lint"):
            report = run_lint(
                trace=run.result.trace, program=run.point.program
            )
        return {
            "program": run.point.program,
            "flavor": run.point.flavor,
            "threads": run.point.threads,
            "digest": run.digest,
            "source": run.source,
            "report": report.to_dict(),
        }

    def check_payload(self, point: MatrixPoint) -> dict[str, Any]:
        from ..staticc import check_program

        program = self.resolve_program(point)
        with _obs.span("serve.check"):
            model, report = check_program(
                program, machine_config=self.machine_config
            )
        return {
            "program": point.program,
            "summary": model.summary(),
            "report": report.to_dict(),
        }

    def advise_payload(
        self, point: MatrixPoint, what_ifs: Sequence[str]
    ) -> dict[str, Any]:
        from ..advisor import AdvisorError, advise_program, parse_what_if

        program = self.resolve_program(point)
        flavor = self.resolve_flavor(point.flavor)
        try:
            scenarios = [parse_what_if(spec) for spec in what_ifs]
            with _obs.span("serve.advise"):
                report = advise_program(
                    program,
                    flavor=flavor,
                    num_threads=point.threads,
                    machine_config=self.machine_config,
                    what_ifs=scenarios,
                )
        except AdvisorError as exc:
            raise ServeError(400, str(exc)) from None
        payload = report.to_dict()
        assert isinstance(payload, dict)
        return payload
