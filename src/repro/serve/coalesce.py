"""Request coalescing: single-flight execution keyed on run digests.

Two tenants asking the service for the same :class:`~repro.exec.RunKey`
must cost one simulation, not two.  The on-disk cache already dedupes
*sequential* repeats, but two requests in flight at once would both
miss and both simulate — the classic cache-stampede window.  The
:class:`Coalescer` closes it: the first arrival for a key becomes the
leader and runs the work; every later arrival while it is in flight
awaits the leader's future and shares its result (or its exception).

Keys are :meth:`RunKey.digest` strings — the same identity the cache
files use — so coalescing composes with the artifact tier: leader
stores, joiners and every later request hit.

Joiners await through :func:`asyncio.shield` so one cancelled waiter
(a dropped connection) cannot cancel the shared computation out from
under the others; a cancelled *leader* cancels the future, waking
joiners with ``CancelledError``.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, TypeVar

from ..obs import registry as _obs

T = TypeVar("T")


class Coalescer:
    """Single-flight map: at most one in-flight call per key.

    Must only be touched from one event loop; the *work* it guards may
    run anywhere (typically ``loop.run_in_executor`` into the worker
    thread pool).
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future[object]] = {}
        #: Requests that joined an in-flight leader instead of running.
        self.coalesced = 0
        #: Leader executions started.
        self.led = 0

    def inflight(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, call: Callable[[], Awaitable[T]]
    ) -> T:
        """Run ``call`` under ``key``, or join the in-flight one."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            _obs.count("serve.coalesced")
            result = await asyncio.shield(existing)
            return result  # type: ignore[return-value]
        loop = asyncio.get_running_loop()
        future: asyncio.Future[object] = loop.create_future()
        self._inflight[key] = future
        self.led += 1
        try:
            result = await call()
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Joiners (if any) retrieve it on wake; consume here so
                # a joiner-less failure never logs "exception was never
                # retrieved" at GC time.
                future.exception()
            raise
        else:
            future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
