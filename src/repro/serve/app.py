"""The ``grain-graphs serve`` application: routes, workers, lifecycle.

Endpoint surface (all JSON unless noted)::

    GET  /healthz                     liveness probe
    GET  /metrics                     Prometheus text (repro.obs export)
    GET  /v1/programs                 the program registry
    POST /v1/studies                  {"points": [...]} -> 202 {job}
    GET  /v1/jobs/<id>                job status
    GET  /v1/jobs/<id>/report         completed JSONL lines (poll)
    GET  /v1/jobs/<id>/report?follow=1  stream lines as points finish
    POST /v1/lint                     {"program", "flavor", "threads"}
    POST /v1/check                    {"program"}
    POST /v1/advise                   {"program", ..., "what_ifs": []}

Execution model: handlers run on the event loop; anything that
simulates or analyzes is pushed into a bounded ``ThreadPoolExecutor``
(``--jobs`` wide) through the :class:`~repro.serve.coalesce.Coalescer`,
which keys on :meth:`RunKey.digest` so concurrent tenants asking for
the same point share one engine invocation.  Study submissions go
through the :class:`~repro.serve.jobs.JobManager`'s bounded queue,
which sheds load with 429 + ``Retry-After`` instead of accepting
unbounded work.  Every request body is bounded by the protocol layer
and every handler by ``request_timeout`` (504 on expiry); errors out of
handlers are structured JSON envelopes, never tracebacks.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, AsyncIterator, Awaitable, Callable, Optional

from ..exec.cache import RunCache
from ..machine import MachineConfig
from ..obs import registry as _obs
from ..obs.export import PROMETHEUS_CONTENT_TYPE, to_prometheus
from ..profiler.recorder import ProfilerConfig
from .coalesce import Coalescer
from .jobs import JobManager
from .protocol import (
    JSONL_CONTENT_TYPE,
    ProtocolError,
    Request,
    Response,
    ServeError,
    error_response,
    json_response,
    read_request,
    write_response,
)
from .service import AnalysisService, MatrixPoint, PointRun

Handler = Callable[[Request], Awaitable[Response]]


@dataclass
class ServeConfig:
    """Everything ``grain-graphs serve`` accepts on the command line."""

    host: str = "127.0.0.1"
    port: int = 8321
    cache_dir: Optional[str] = None
    jobs: int = 2
    queue_capacity: int = 64
    request_timeout: float = 300.0

    def validate(self) -> None:
        if self.jobs < 1:
            raise ValueError("serve: --jobs must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("serve: --queue-capacity must be >= 1")
        if self.request_timeout <= 0:
            raise ValueError("serve: --request-timeout must be > 0")


class App:
    """One server instance: service + coalescer + jobs + routes."""

    def __init__(
        self,
        config: ServeConfig,
        service: AnalysisService | None = None,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
    ) -> None:
        config.validate()
        self.config = config
        if service is None:
            cache = (
                RunCache(config.cache_dir) if config.cache_dir else None
            )
            service = AnalysisService(
                cache=cache,
                machine_config=machine_config,
                profiler=profiler,
            )
        self.service = service
        self.coalescer = Coalescer()
        self.executor = ThreadPoolExecutor(
            max_workers=config.jobs, thread_name_prefix="grain-serve"
        )
        self.jobs: Optional[JobManager] = None  # built on the loop

    async def start(self) -> None:
        """Finish construction on the running event loop."""
        self.jobs = JobManager(
            self.run_point_record,
            capacity=self.config.queue_capacity,
            workers=self.config.jobs,
        )

    async def stop(self) -> None:
        if self.jobs is not None:
            await self.jobs.stop()
        self.executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Coalesced execution
    # ------------------------------------------------------------------
    async def run_point(self, point: MatrixPoint) -> PointRun:
        """One point through coalescer -> thread pool -> service.

        The coalescing key is the point's ``RunKey`` digest, computed
        inline (cheap: resolution + hashing, no simulation); execution
        happens on a worker thread.
        """
        loop = asyncio.get_running_loop()
        key, _program = await loop.run_in_executor(
            self.executor, self.service.key_for, point
        )
        return await self.coalescer.run(
            key.digest(),
            lambda: loop.run_in_executor(
                self.executor, self.service.run_point, point
            ),
        )

    async def run_point_record(self, point: MatrixPoint) -> dict[str, Any]:
        run = await self.run_point(point)
        return run.record()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        _obs.count("serve.requests")
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response({"status": "ok"})
        if route == ("GET", "/metrics"):
            return Response(
                body=to_prometheus(_obs.snapshot()).encode(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if route == ("GET", "/v1/programs"):
            return json_response({"programs": self.service.programs()})
        if route == ("POST", "/v1/studies"):
            return await self._submit_study(request)
        if route == ("GET", "/v1/jobs"):
            assert self.jobs is not None
            return json_response(
                {"jobs": [job.to_dict() for job in self.jobs.jobs()]}
            )
        if request.method == "GET" and request.path.startswith("/v1/jobs/"):
            return await self._job_endpoint(request)
        if route == ("POST", "/v1/lint"):
            return await self._lint(request)
        if route == ("POST", "/v1/check"):
            return await self._check(request)
        if route == ("POST", "/v1/advise"):
            return await self._advise(request)
        raise ServeError(404, f"no route for {request.method} {request.path}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _body_point(self, request: Request) -> MatrixPoint:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ServeError(400, "request body must be a JSON object")
        spec = {
            k: payload[k]
            for k in ("program", "flavor", "threads")
            if k in payload
        }
        return self.service.parse_point(spec)

    async def _submit_study(self, request: Request) -> Response:
        assert self.jobs is not None
        payload = request.json()
        if not isinstance(payload, dict) or "points" not in payload:
            raise ServeError(
                400, 'submit a study as {"points": [spec, ...]}'
            )
        raw_points = payload["points"]
        if not isinstance(raw_points, list):
            raise ServeError(400, "'points' must be a list")
        points = [self.service.parse_point(spec) for spec in raw_points]
        job = self.jobs.submit(points)
        return json_response(
            {"job": job.to_dict()},
            status=202,
            headers={"Location": f"/v1/jobs/{job.id}"},
        )

    async def _job_endpoint(self, request: Request) -> Response:
        assert self.jobs is not None
        parts = request.path.removeprefix("/v1/jobs/").split("/")
        job = self.jobs.get(parts[0])
        if len(parts) == 1:
            return json_response({"job": job.to_dict()})
        if len(parts) == 2 and parts[1] == "report":
            if request.query.get("follow") in ("1", "true", "yes"):
                return Response(
                    content_type=JSONL_CONTENT_TYPE,
                    stream=self._follow_stream(job.id),
                )
            body = "".join(
                line + "\n" for line in self.jobs.report_lines(job)
            )
            return Response(
                body=body.encode(), content_type=JSONL_CONTENT_TYPE
            )
        raise ServeError(404, f"no route for GET {request.path}")

    def _follow_stream(self, job_id: str) -> AsyncIterator[bytes]:
        assert self.jobs is not None
        jobs = self.jobs

        async def stream() -> AsyncIterator[bytes]:
            job = jobs.get(job_id)
            async for line in jobs.follow(
                job, timeout=self.config.request_timeout
            ):
                yield (line + "\n").encode()

        return stream()

    async def _lint(self, request: Request) -> Response:
        point = self._body_point(request)
        run = await self.run_point(point)
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            self.executor, self.service.lint_payload, run
        )
        return json_response(payload)

    async def _check(self, request: Request) -> Response:
        point = self._body_point(request)
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            self.executor, self.service.check_payload, point
        )
        return json_response(payload)

    async def _advise(self, request: Request) -> Response:
        point = self._body_point(request)
        payload_in = request.json()
        what_ifs = payload_in.get("what_ifs", [])
        if not isinstance(what_ifs, list) or not all(
            isinstance(w, str) for w in what_ifs
        ):
            raise ServeError(400, "'what_ifs' must be a list of strings")
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            self.executor, self.service.advise_payload, point, what_ifs
        )
        return json_response(payload)


# ---------------------------------------------------------------------------
# Connection handling
# ---------------------------------------------------------------------------
async def handle_connection(
    app: App,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve requests off one connection until close/EOF/protocol error."""
    try:
        while True:
            try:
                request = await read_request(reader)
            except ProtocolError:
                break  # hostile/garbled input: drop the connection
            if request is None:
                break
            keep_alive = request.keep_alive
            try:
                response = await asyncio.wait_for(
                    app.handle(request), app.config.request_timeout
                )
            except ServeError as exc:
                response = error_response(exc)
            except asyncio.TimeoutError:
                response = error_response(
                    ServeError(
                        504,
                        "request timed out after "
                        f"{app.config.request_timeout:g}s",
                    )
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # never leak a traceback on the wire
                _obs.count("serve.internal_errors")
                response = error_response(
                    ServeError(500, f"internal error: {type(exc).__name__}")
                )
            try:
                await write_response(writer, response, keep_alive)
            except (ConnectionError, asyncio.CancelledError):
                raise
            if not keep_alive:
                break
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def start_server(app: App) -> asyncio.Server:
    """Start listening (after :meth:`App.start`); caller owns shutdown."""
    await app.start()
    return await asyncio.start_server(
        partial(handle_connection, app), app.config.host, app.config.port
    )


def bound_port(server: asyncio.Server) -> int:
    sockets = server.sockets
    assert sockets
    port = sockets[0].getsockname()[1]
    return int(port)


async def run_serve(config: ServeConfig) -> None:
    """The blocking entry behind ``grain-graphs serve``."""
    app = App(config)
    server = await start_server(app)
    cache_note = (
        f"cache {config.cache_dir}" if config.cache_dir else "no disk cache"
    )
    print(
        f"grain-graphs serve: listening on "
        f"http://{config.host}:{bound_port(server)} "
        f"({config.jobs} worker(s), queue capacity "
        f"{config.queue_capacity}, {cache_note})",
        flush=True,
    )
    try:
        async with server:
            await server.serve_forever()
    finally:
        await app.stop()
