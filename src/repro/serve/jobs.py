"""Study jobs: bounded queueing, worker pool, streamable results.

``POST /v1/studies`` turns a matrix of points into a :class:`Job`; the
:class:`JobManager` owns every job and the single bounded work queue
behind them.  Admission is all-or-nothing: a study is only accepted if
the queue has room for *every* point, otherwise the whole submit is
shed with a 429 + ``Retry-After`` — the service never accepts work it
has no capacity to finish, and never half-accepts a study.

``--jobs N`` worker tasks drain the queue.  Each point executes through
the runner callable the app wires in (coalescer -> thread pool ->
:meth:`AnalysisService.run_point`), so identical points across jobs and
tenants still cost one simulation.  A failing point records a
structured error line and the job marches on — one bad point does not
poison a thousand-point study.

Results are JSONL lines in submission order.  ``report()`` returns the
lines completed so far (poll mode); ``follow()`` is an async iterator
that yields each line as soon as it is available (stream mode, rendered
with chunked transfer-encoding by the protocol layer).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Optional

from ..obs import registry as _obs
from .protocol import ServeError
from .service import MatrixPoint

#: What the app wires in: point -> JSONL record (may raise ServeError).
PointRunner = Callable[[MatrixPoint], Awaitable[dict[str, Any]]]


@dataclass
class Job:
    """One submitted study and its (incrementally filled) results."""

    id: str
    points: list[MatrixPoint]
    created: float
    results: list[Optional[dict[str, Any]]] = field(default_factory=list)
    completed: int = 0
    failed: int = 0

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.points)

    @property
    def done(self) -> bool:
        return self.completed >= len(self.points)

    @property
    def state(self) -> str:
        if self.done:
            return "done"
        return "running" if self.completed else "queued"

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "state": self.state,
            "points": len(self.points),
            "completed": self.completed,
            "failed": self.failed,
        }


class JobManager:
    """Owns jobs, the bounded queue, and the drain workers.

    Created (and only touched) on the server's event loop; the sync
    work happens inside the runner callable.
    """

    def __init__(
        self,
        runner: PointRunner,
        capacity: int = 64,
        workers: int = 2,
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        self.capacity = capacity
        self._runner = runner
        self._queue: asyncio.Queue[tuple[Job, int]] = asyncio.Queue()
        self._queued = 0  # points admitted but not yet finished
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._cond = asyncio.Condition()
        self._workers = [
            asyncio.create_task(self._drain(), name=f"grain-serve-w{i}")
            for i in range(workers)
        ]

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, points: list[MatrixPoint]) -> Job:
        """Admit a study whole, or shed it with a structured 429."""
        if not points:
            raise ServeError(400, "empty study: submit at least one point")
        if self._queued + len(points) > self.capacity:
            _obs.count("serve.load_shed")
            raise ServeError(
                429,
                f"study of {len(points)} point(s) exceeds remaining "
                f"queue capacity ({self.capacity - self._queued} of "
                f"{self.capacity}); retry later",
                retry_after=1,
            )
        job = Job(
            id=f"job-{next(self._ids):06d}",
            points=list(points),
            created=time.time(),
        )
        self._jobs[job.id] = job
        self._queued += len(points)
        for index in range(len(points)):
            self._queue.put_nowait((job, index))
        _obs.count("serve.jobs_submitted")
        return job

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(404, f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    async def _drain(self) -> None:
        while True:
            job, index = await self._queue.get()
            try:
                record = await self._runner(job.points[index])
            except asyncio.CancelledError:
                raise
            except ServeError as exc:
                record = self._error_record(job.points[index], exc.message)
            except Exception as exc:  # engine/analysis failure
                record = self._error_record(
                    job.points[index], f"{type(exc).__name__}: {exc}"
                )
            async with self._cond:
                job.results[index] = record
                job.completed += 1
                if "error" in record:
                    job.failed += 1
                self._queued -= 1
                self._cond.notify_all()
            _obs.count("serve.points_completed")
            self._queue.task_done()

    @staticmethod
    def _error_record(
        point: MatrixPoint, message: str
    ) -> dict[str, Any]:
        return {
            "program": point.program,
            "flavor": point.flavor,
            "threads": point.threads,
            "error": message,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report_lines(self, job: Job) -> list[str]:
        """The JSONL lines completed so far, in submission order (a
        later line may still be pending while an earlier one streams)."""
        lines = []
        for record in job.results:
            if record is None:
                break
            lines.append(json.dumps(record, sort_keys=True))
        return lines

    async def follow(
        self, job: Job, timeout: Optional[float] = None
    ) -> AsyncIterator[str]:
        """Yield each result line as soon as it exists, in order.

        ``timeout`` bounds the wait for any *single* next line; on
        expiry the stream ends early (the client re-follows or polls).
        """
        for index in range(len(job.points)):
            async with self._cond:
                try:
                    await asyncio.wait_for(
                        self._cond.wait_for(
                            lambda: job.results[index] is not None
                        ),
                        timeout,
                    )
                except asyncio.TimeoutError:
                    return
            record = job.results[index]
            assert record is not None
            yield json.dumps(record, sort_keys=True)

    async def stop(self) -> None:
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
