"""``grain-graphs serve``: the multi-tenant analysis service.

A long-running stdlib-``asyncio`` HTTP+JSON server in front of the
study pipeline — ROADMAP item 2's "millions of users" architecture.
The pieces, bottom up:

:mod:`repro.serve.protocol`
    HTTP/1.1 over asyncio streams, JSON bodies, chunked streaming, and
    the structured :class:`ServeError` envelope (the CLI's friendly
    exit-2 one-liners, as JSON with real status codes).

:mod:`repro.serve.coalesce`
    Single-flight request coalescing keyed on ``RunKey.digest()`` — two
    tenants asking for the same point await one in-flight simulation.

:mod:`repro.serve.service`
    The sync, thread-safe analysis core: memo -> disk cache -> engine
    per point, plus lint/check/advise bodies.

:mod:`repro.serve.jobs`
    Bounded study queue + worker pool; sheds load with 429 +
    ``Retry-After`` instead of accepting unbounded work; results
    stream as JSONL lines per completed point.

:mod:`repro.serve.app`
    Routes, per-request timeouts, ``/metrics`` (Prometheus text from
    :mod:`repro.obs`) and ``/healthz``, and the ``run_serve`` entry the
    CLI calls.
"""

from __future__ import annotations

from .app import (
    App,
    ServeConfig,
    bound_port,
    handle_connection,
    run_serve,
    start_server,
)
from .coalesce import Coalescer
from .jobs import Job, JobManager
from .protocol import Request, Response, ServeError
from .service import AnalysisService, PointRun

__all__ = [
    "AnalysisService",
    "App",
    "Coalescer",
    "Job",
    "JobManager",
    "PointRun",
    "Request",
    "Response",
    "ServeConfig",
    "ServeError",
    "bound_port",
    "handle_connection",
    "run_serve",
    "start_server",
]
