"""Minimal HTTP/1.1 + JSON protocol layer for ``grain-graphs serve``.

The service speaks plain HTTP over :mod:`asyncio` streams — no web
framework, mirroring the repo-wide stdlib-only discipline.  This module
owns the wire format and nothing else:

:class:`Request`
    One parsed request: method, path, query, headers, body.
    :func:`read_request` builds it from a ``StreamReader`` with hard
    limits on line length, header count, and body size, so a hostile or
    confused client cannot balloon server memory.

:class:`Response`
    status + headers + either a complete body or an async byte-chunk
    stream (rendered with chunked transfer-encoding — how
    ``GET /v1/jobs/<id>/report?follow=1`` streams JSONL lines as points
    complete).

:class:`ServeError`
    The structured-error channel.  Everything the CLI reports as a
    friendly one-line exit-2 message (unknown program, unknown flavor,
    malformed matrix spec) surfaces over HTTP as a JSON envelope::

        {"error": {"status": 404, "message": "unknown program 'x' ..."}}

    with ``retry_after`` additionally rendered as a ``Retry-After``
    header — the 429 load-shedding path.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Mapping, Optional
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases for every status the app emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADERS = 64
MAX_BODY = 1024 * 1024

JSON_CONTENT_TYPE = "application/json"
JSONL_CONTENT_TYPE = "application/x-ndjson"


class ProtocolError(Exception):
    """A malformed or over-limit request; the connection is dropped."""


class ServeError(Exception):
    """A structured, user-facing service error.

    Handlers raise these for anything that is the *client's* fault (or
    a capacity decision): the server renders the JSON error envelope
    with the given status instead of a traceback, exactly as the CLI
    maps user-input problems to one-line exit-2 messages.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON; :class:`ServeError` 400 when it
        isn't (empty body parses as ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServeError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests
        raise ProtocolError("truncated request line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("truncated headers") from None
        if raw in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError("too many headers")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0 or length > MAX_BODY:
            raise ProtocolError(f"body of {length} bytes exceeds limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError("truncated body") from None
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


@dataclass
class Response:
    """What a handler returns; the connection loop serializes it."""

    status: int = 200
    body: bytes = b""
    content_type: str = JSON_CONTENT_TYPE
    headers: dict[str, str] = field(default_factory=dict)
    #: When set, the response streams with chunked transfer-encoding
    #: and ``body`` is ignored.
    stream: Optional[AsyncIterator[bytes]] = None

    def head(self, keep_alive: bool) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.append(f"Content-Type: {self.content_type}")
        if self.stream is None:
            lines.append(f"Content-Length: {len(self.body)}")
        else:
            lines.append("Transfer-Encoding: chunked")
        lines.append(
            "Connection: " + ("keep-alive" if keep_alive else "close")
        )
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(
    payload: Any,
    status: int = 200,
    headers: Mapping[str, str] | None = None,
) -> Response:
    return Response(
        status=status,
        body=(json.dumps(payload, indent=1) + "\n").encode(),
        headers=dict(headers or {}),
    )


def error_response(error: ServeError) -> Response:
    headers: dict[str, str] = {}
    if error.retry_after is not None:
        headers["Retry-After"] = str(error.retry_after)
    return json_response(
        {"error": {"status": error.status, "message": error.message}},
        status=error.status,
        headers=headers,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    """Serialize ``response``; chunked when it carries a stream."""
    writer.write(response.head(keep_alive))
    if response.stream is None:
        writer.write(response.body)
        await writer.drain()
        return
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
