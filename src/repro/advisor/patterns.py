"""Parallel-pattern detectors over the static model (DiscoPoP-style).

Each detector examines the :class:`~repro.staticc.model.StaticModel` —
the symbolic series-parallel expansion of a program, with per-grain
memory footprints — and emits structured :class:`PatternFinding`
records naming the source region, the blocking dependence (if any), and
the pattern's projected benefit.  The same detectors back the
``pattern.*`` lint-pass family (PROGRAM_LAYER, severity INFO across the
board so ``grain-graphs check`` exit codes are unchanged) and the
ranked recommendations of :func:`repro.advisor.advise_program`.

The taxonomy follows the classic parallel-pattern catalogs that
DiscoPoP's explorer detects from dependence graphs:

- ``pattern.reduction`` — logically-parallel grains whose only conflict
  is a write/write accumulation into one region with identical ranges:
  privatize per-participant copies and combine at the join.  The
  alternative correctness fix — ordering the writers — would *add* the
  serialized sum to the span; the reported win is what reduction keeps.
- ``pattern.do-all`` — per-loop cross-iteration conflict scan: a clean
  scan certifies the loop as a do-all over every schedule; a dirty scan
  names the blocking dependence.  Loops whose ``num_threads`` cap binds
  get a quantified raise-the-cap benefit.
- ``pattern.pipeline`` — consecutive serialized top-level stages linked
  by read-after-write dependences: the dependence blocks task
  parallelism, but streaming blocks through the stages approaches the
  heaviest stage asymptotically.
- ``pattern.task-parallelism`` — consecutive serialized top-level
  stages with *disjoint* footprints: nothing but program order
  serializes them, so running them concurrently turns the chain's sum
  into its max.
- ``pattern.geometric`` — loops whose iterations each write a disjoint
  block of one region (a geometric decomposition): distributing blocks
  across NUMA nodes converts worst-case remote lines into local ones,
  shrinking the pessimistic work bound.

Every detector runs under an ``advisor.pattern.<kind>`` obs span so the
bench harness can track the advisor's cost stage by stage.  All
thresholds and tie-breaks are deterministic: two runs over one model
produce byte-identical findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from ..core.nodes import GGNode, GrainGraph, NodeKind
from ..lint.diagnostics import Diagnostic, Severity
from ..lint.framework import PROGRAM_LAYER, register
from ..lint.races import scan_conflicts
from ..machine.caches import LINE_SIZE
from ..machine.machine import MachineConfig
from ..obs import registry as _obs
from ..staticc.bounds import worst_line_latency
from ..staticc.model import StaticLoop, StaticModel, StaticTask

# Reference team for benefit projection when a loop does not pin one:
# the paper testbed's core count (matches repro.staticc.passes).
DEFAULT_TEAM = 48

# A serialized stage lighter than the dearest task-creation cost (GCC:
# 1400 cycles) is not worth restructuring; matches FINE_GRAIN_CYCLES in
# repro.staticc.passes.
MIN_STAGE_CYCLES = 1400


class PatternKind(enum.Enum):
    """The detected parallelization-pattern taxonomy."""

    REDUCTION = "reduction"
    DO_ALL = "do-all"
    PIPELINE = "pipeline"
    TASK_PARALLELISM = "task-parallelism"
    GEOMETRIC = "geometric"

    @property
    def rule_id(self) -> str:
        return f"pattern.{self.value}"


@dataclass(frozen=True)
class PatternFinding:
    """One detected pattern opportunity, structured for ranking.

    ``affected_nodes`` are the static-graph nodes a what-if scenario
    scales when ``speedup_factor > 1`` (the causal projection of
    applying the pattern); ``win_cycles`` is the pattern-specific
    projected wall-clock win used for ranking, computed from the
    work-span math documented per detector.  ``blocking`` is empty when
    nothing blocks the pattern.
    """

    pattern: PatternKind
    target: str
    loc: str = ""
    anchor_node: Optional[int] = None
    grain_id: Optional[str] = None
    affected_nodes: tuple[int, ...] = ()
    affected_cycles: int = 0
    blocking: str = ""
    benefit: str = ""
    win_cycles: int = 0
    speedup_factor: float = 1.0
    detail: str = ""
    fix_hint: str = ""

    def message(self) -> str:
        """The lint-diagnostic rendering: target, blocking dependence,
        and projected benefit on one line."""
        parts = [f"{self.pattern.value} pattern at {self.target}: "
                 f"{self.detail}"]
        if self.blocking:
            parts.append(f"blocking dependence: {self.blocking}")
        if self.benefit:
            parts.append(f"projected benefit: {self.benefit}")
        return "; ".join(parts)


def finding_diagnostic(finding: PatternFinding) -> Diagnostic:
    """Render one finding as an INFO diagnostic for the lint report."""
    return Diagnostic(
        rule_id=finding.pattern.rule_id,
        severity=Severity.INFO,
        message=finding.message(),
        node_id=finding.anchor_node,
        grain_id=finding.grain_id,
        loc=finding.loc,
        fix_hint=finding.fix_hint,
    )


# ---------------------------------------------------------------------------
# Footprint helpers
# ---------------------------------------------------------------------------
FootprintIndex = dict[str, list[tuple[int, int]]]


def _merge_intervals(
    intervals: Iterable[tuple[int, int]]
) -> list[tuple[int, int]]:
    merged: list[tuple[int, int]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def _footprint_index(
    entries: Iterable[tuple[str, int, int]]
) -> FootprintIndex:
    """Per-region merged byte intervals for one footprint collection."""
    by_region: dict[str, list[tuple[int, int]]] = {}
    for region, start, end in entries:
        by_region.setdefault(region, []).append((start, end))
    return {
        region: _merge_intervals(intervals)
        for region, intervals in by_region.items()
    }


def _index_overlap(a: FootprintIndex, b: FootprintIndex) -> Optional[str]:
    """The first (lexicographically smallest) region where the two
    merged indices overlap by at least one byte, or None."""
    for region in sorted(a.keys() & b.keys()):
        left, right = a[region], b[region]
        i = j = 0
        while i < len(left) and j < len(right):
            s1, e1 = left[i]
            s2, e2 = right[j]
            if max(s1, s2) < min(e1, e2):
                return region
            if e1 <= e2:
                i += 1
            else:
                j += 1
    return None


# ---------------------------------------------------------------------------
# Top-level stage extraction (the serialized backbone of the root task)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _Stage:
    """One serialized top-level item: a root fragment or a whole loop."""

    kind: str  # "fragment" | "loop"
    target: str
    loc: str
    order: int  # node id anchoring program order
    anchor_node: int
    grain_id: Optional[str]
    weight: int  # span contribution of the stage (cycles)
    nodes: tuple[int, ...]  # duration-carrying nodes a scenario scales
    reads: FootprintIndex = field(default_factory=dict)
    writes: FootprintIndex = field(default_factory=dict)

    def disjoint(self, other: "_Stage") -> bool:
        """No read/write or write/write overlap between the stages."""
        return (
            _index_overlap(self.writes, other.writes) is None
            and _index_overlap(self.writes, other.reads) is None
            and _index_overlap(self.reads, other.writes) is None
        )

    def feeds(self, other: "_Stage") -> Optional[str]:
        """Region this stage writes and ``other`` reads (RAW), if any."""
        return _index_overlap(self.writes, other.reads)


def _root_task(model: StaticModel) -> StaticTask:
    return next(t for t in model.tasks.values() if not t.path[1:])


def _chunks_by_loop(graph: GrainGraph) -> dict[int, list[GGNode]]:
    chunks: dict[int, list[GGNode]] = {}
    for node in graph.nodes.values():
        if node.kind is NodeKind.CHUNK and node.loop_id is not None:
            chunks.setdefault(node.loop_id, []).append(node)
    for members in chunks.values():
        members.sort(key=lambda n: n.node_id)
    return chunks


def _root_stages(model: StaticModel) -> list[_Stage]:
    """The root task's serialized stage sequence in program order:
    non-empty fragments and whole loops, zero-weight glue dropped."""
    root = _root_task(model)
    chunks = _chunks_by_loop(model.graph)
    stages: list[_Stage] = []
    for node in model.graph.nodes.values():
        if (
            node.kind is NodeKind.FRAGMENT
            and node.grain_id == root.gid
            and node.duration > 0
        ):
            stages.append(
                _Stage(
                    kind="fragment",
                    target=(
                        node.loc
                        or f"{model.program} fragment #{node.frag_seq}"
                    ),
                    loc=node.loc,
                    order=node.node_id,
                    anchor_node=node.node_id,
                    grain_id=node.grain_id,
                    weight=node.duration,
                    nodes=(node.node_id,),
                    reads=_footprint_index(node.reads),
                    writes=_footprint_index(node.writes),
                )
            )
    for loop in model.loops:
        members = chunks.get(loop.loop_id, [])
        if loop.max_iter_cycles <= 0:
            continue
        stages.append(
            _Stage(
                kind="loop",
                target=loop.spec.definition_key(),
                loc=str(loop.spec.loc),
                order=loop.fork_node,
                anchor_node=loop.fork_node,
                grain_id=None,
                weight=loop.max_iter_cycles,
                nodes=tuple(n.node_id for n in members),
                reads=_footprint_index(
                    entry for n in members for entry in n.reads
                ),
                writes=_footprint_index(
                    entry for n in members for entry in n.writes
                ),
            )
        )
    stages.sort(key=lambda s: s.order)
    return stages


# ---------------------------------------------------------------------------
# pattern.reduction
# ---------------------------------------------------------------------------
def _grain_cycles(model: StaticModel, node: GGNode) -> int:
    """Declared cycles of the grain a conflict node belongs to: the
    whole task's own work for task grains, the chunk's for chunks."""
    gid = node.grain_id or ""
    task = model.tasks.get(gid)
    if task is not None:
        return task.own_cycles
    return node.duration


def detect_reduction(
    model: StaticModel,
    machine_config: Optional[MachineConfig] = None,
    num_threads: int = DEFAULT_TEAM,
) -> list[PatternFinding]:
    """Accumulation-shaped conflicts: every conflict on a region is
    write/write and all participants write the identical byte range.

    The win is measured against the *ordering* fix (a ``TaskWait``
    chain, as in the ``racy-fixed`` variant): serializing the
    participants adds ``sum - max`` of their work to the span, which the
    reduction pattern — privatize, then combine once at the join —
    avoids entirely while fixing the same race.
    """
    with _obs.span("advisor.pattern.reduction"):
        findings: list[PatternFinding] = []
        scan = scan_conflicts(model.graph)
        by_region: dict[str, list] = {}
        for conflict in scan.conflicts:
            by_region.setdefault(conflict.region, []).append(conflict)
        for region in sorted(by_region):
            conflicts = by_region[region]
            if any(c.kind != "write/write" for c in conflicts):
                continue
            nodes: dict[int, GGNode] = {}
            for c in conflicts:
                nodes[c.first.node_id] = c.first
                nodes[c.second.node_id] = c.second
            ranges = {
                tuple(
                    sorted(
                        (s, e)
                        for r, s, e in node.writes
                        if r == region
                    )
                )
                for node in nodes.values()
            }
            if len(ranges) != 1:
                continue  # partial overlaps are not an accumulation
            by_grain: dict[str, int] = {}
            for node in nodes.values():
                gid = node.grain_id or ""
                by_grain[gid] = max(
                    by_grain.get(gid, 0), _grain_cycles(model, node)
                )
            if len(by_grain) < 2:
                continue
            cycles = sorted(by_grain.values())
            win = sum(cycles) - cycles[-1]
            anchor = min(nodes.values(), key=lambda n: n.node_id)
            participants = ", ".join(sorted(by_grain))
            findings.append(
                PatternFinding(
                    pattern=PatternKind.REDUCTION,
                    target=f"region {region!r}",
                    loc=anchor.loc,
                    anchor_node=anchor.node_id,
                    grain_id=anchor.grain_id,
                    affected_nodes=tuple(sorted(nodes)),
                    affected_cycles=sum(by_grain.values()),
                    blocking=(
                        f"write/write accumulation on region {region!r} "
                        f"by grains {participants}"
                    ),
                    benefit=(
                        f"keeps the {len(by_grain)} writers parallel: "
                        f"ordering them instead would add {win} cycles "
                        "to the span"
                    ),
                    win_cycles=win,
                    speedup_factor=1.0,
                    detail=(
                        f"{len(by_grain)} logically-parallel grains all "
                        f"write the same bytes of {region!r} — an "
                        "accumulation, not independent output"
                    ),
                    fix_hint=(
                        "privatize a per-participant copy of the region "
                        "and combine the copies once after the join "
                        "(OpenMP reduction clause semantics)"
                    ),
                )
            )
        return findings


# ---------------------------------------------------------------------------
# pattern.do-all
# ---------------------------------------------------------------------------
def _cross_iteration_conflict(
    chunks: list[GGNode],
) -> Optional[tuple[str, str, str]]:
    """First cross-iteration footprint conflict among one loop's chunk
    nodes: ``(region, gid_a, gid_b)``, or None when the loop is clean.

    Same-loop chunks are pairwise logically parallel (the shared policy
    of :func:`repro.core.reachability.logically_ordered`), so any
    overlapping access pair with at least one write conflicts — no
    reachability query needed, which keeps this a sorted sweep.
    """
    by_region: dict[str, list[tuple[int, int, bool, str]]] = {}
    for node in chunks:
        gid = node.grain_id or ""
        for region, start, end in node.reads:
            if end > start:
                by_region.setdefault(region, []).append(
                    (start, end, False, gid)
                )
        for region, start, end in node.writes:
            if end > start:
                by_region.setdefault(region, []).append(
                    (start, end, True, gid)
                )
    for region in sorted(by_region):
        accesses = sorted(by_region[region])
        # Furthest-reaching prior interval per category, tracked for two
        # distinct grains so a same-grain best never masks a conflict.
        best_any: list[tuple[int, str]] = []  # [(end, gid)] len <= 2
        best_write: list[tuple[int, str]] = []

        def _push(best: list[tuple[int, str]], end: int, gid: str) -> None:
            for i, (e, g) in enumerate(best):
                if g == gid:
                    if end > e:
                        best[i] = (end, gid)
                    break
            else:
                best.append((end, gid))
            best.sort(reverse=True)
            del best[2:]

        for start, end, is_write, gid in accesses:
            for e, g in best_write:
                if g != gid and e > start:
                    return (region, *sorted((g, gid)))
            if is_write:
                for e, g in best_any:
                    if g != gid and e > start:
                        return (region, *sorted((g, gid)))
            _push(best_any, end, gid)
            if is_write:
                _push(best_write, end, gid)
    return None


def _loop_estimate(loop: StaticLoop, team: int) -> int:
    """Optimistic parallel cost of the loop on ``team`` threads."""
    total = loop.total_cycles
    return max(-(-total // team), loop.max_iter_cycles)


def detect_do_all(
    model: StaticModel,
    machine_config: Optional[MachineConfig] = None,
    num_threads: int = DEFAULT_TEAM,
) -> list[PatternFinding]:
    """Certify (or refute) every loop as a do-all, and quantify the win
    of raising a binding ``num_threads`` cap."""
    with _obs.span("advisor.pattern.do-all"):
        findings: list[PatternFinding] = []
        chunks = _chunks_by_loop(model.graph)
        for loop in model.loops:
            spec = loop.spec
            if spec.iterations < 2 or loop.total_cycles <= 0:
                continue
            members = chunks.get(loop.loop_id, [])
            conflict = _cross_iteration_conflict(members)
            target = spec.definition_key()
            anchor = loop.fork_node
            nodes = tuple(n.node_id for n in members)
            if conflict is not None:
                region, gid_a, gid_b = conflict
                findings.append(
                    PatternFinding(
                        pattern=PatternKind.DO_ALL,
                        target=target,
                        loc=str(spec.loc),
                        anchor_node=anchor,
                        affected_nodes=nodes,
                        affected_cycles=loop.total_cycles,
                        blocking=(
                            f"cross-iteration conflict on region "
                            f"{region!r} between {gid_a} and {gid_b}"
                        ),
                        benefit="",
                        win_cycles=0,
                        detail=(
                            f"{spec.iterations} iterations are NOT an "
                            "independent do-all: iterations share "
                            f"writable bytes of {region!r}"
                        ),
                        fix_hint=(
                            "make the iteration footprints disjoint, or "
                            "restructure the shared update as a "
                            "reduction"
                        ),
                    )
                )
                continue
            declared = any(n.reads or n.writes for n in members)
            cap = spec.num_threads
            if cap is not None and cap < num_threads:
                win = _loop_estimate(loop, cap) - _loop_estimate(
                    loop, num_threads
                )
            else:
                win = 0
            vacuous = (
                "" if declared
                else " (vacuously: no footprints are declared)"
            )
            if win > 0:
                benefit = (
                    f"raising the team cap from {cap} to {num_threads} "
                    f"saves ~{win} cycles on the loop's parallel cost"
                )
                fix_hint = (
                    "the loop is conflict-free on every schedule; raise "
                    "or drop its num_threads cap (verify the cap was "
                    "not a load-balance workaround first)"
                )
            else:
                benefit = (
                    f"{loop.total_cycles} cycles of loop work already "
                    f"run as {spec.iterations} independent iterations"
                )
                fix_hint = ""
            findings.append(
                PatternFinding(
                    pattern=PatternKind.DO_ALL,
                    target=target,
                    loc=str(spec.loc),
                    anchor_node=anchor,
                    affected_nodes=nodes,
                    affected_cycles=loop.total_cycles,
                    blocking="",
                    benefit=benefit,
                    win_cycles=win,
                    detail=(
                        f"certified do-all over all schedules: no "
                        f"cross-iteration conflict among "
                        f"{spec.iterations} iterations{vacuous}"
                    ),
                    fix_hint=fix_hint,
                )
            )
        return findings


# ---------------------------------------------------------------------------
# pattern.pipeline and pattern.task-parallelism
# ---------------------------------------------------------------------------
def detect_pipeline(
    model: StaticModel,
    machine_config: Optional[MachineConfig] = None,
    num_threads: int = DEFAULT_TEAM,
) -> list[PatternFinding]:
    """Chains of serialized heavy stages linked by read-after-write
    dependences: the dependence blocks running them concurrently, but
    streaming data blocks through the stages bounds the chain by its
    heaviest stage (asymptotically, as block count grows)."""
    with _obs.span("advisor.pattern.pipeline"):
        findings: list[PatternFinding] = []
        stages = _root_stages(model)
        i = 0
        while i < len(stages):
            if stages[i].weight < MIN_STAGE_CYCLES:
                i += 1
                continue
            chain = [stages[i]]
            deps: list[str] = []
            j = i + 1
            while j < len(stages) and stages[j].weight >= MIN_STAGE_CYCLES:
                region = chain[-1].feeds(stages[j])
                if region is None:
                    break
                chain.append(stages[j])
                deps.append(region)
                j += 1
            if len(chain) >= 2:
                weights = [s.weight for s in chain]
                win = sum(weights) - max(weights)
                factor = sum(weights) / max(weights)
                findings.append(
                    PatternFinding(
                        pattern=PatternKind.PIPELINE,
                        target=" -> ".join(s.target for s in chain),
                        loc=chain[0].loc,
                        anchor_node=chain[0].anchor_node,
                        grain_id=chain[0].grain_id,
                        affected_nodes=tuple(
                            nid for s in chain for nid in s.nodes
                        ),
                        affected_cycles=sum(weights),
                        blocking=(
                            "read-after-write dataflow through region(s) "
                            + ", ".join(
                                repr(r) for r in dict.fromkeys(deps)
                            )
                        ),
                        benefit=(
                            f"streaming blocks through the {len(chain)} "
                            f"stages approaches the heaviest stage "
                            f"({max(weights)} cycles): up to {win} "
                            "cycles off the serialized chain"
                        ),
                        win_cycles=win,
                        speedup_factor=factor,
                        detail=(
                            f"{len(chain)} serialized stages form a "
                            "producer/consumer chain — dependences "
                            "forbid task parallelism but admit a "
                            "pipeline"
                        ),
                        fix_hint=(
                            "split the flowing region into blocks and "
                            "overlap stage s of block b with stage s+1 "
                            "of block b-1 (asymptotic benefit grows "
                            "with block count)"
                        ),
                    )
                )
                i = j
            else:
                i += 1
        return findings


def detect_task_parallelism(
    model: StaticModel,
    machine_config: Optional[MachineConfig] = None,
    num_threads: int = DEFAULT_TEAM,
) -> list[PatternFinding]:
    """Runs of consecutive serialized heavy stages whose footprints are
    pairwise disjoint: only program order serializes them, so spawning
    them as sibling tasks turns the run's sum into its max."""
    with _obs.span("advisor.pattern.task-parallelism"):
        findings: list[PatternFinding] = []
        stages = _root_stages(model)
        i = 0
        while i < len(stages):
            if stages[i].weight < MIN_STAGE_CYCLES:
                i += 1
                continue
            run = [stages[i]]
            j = i + 1
            while (
                j < len(stages)
                and stages[j].weight >= MIN_STAGE_CYCLES
                and all(s.disjoint(stages[j]) for s in run)
            ):
                run.append(stages[j])
                j += 1
            if len(run) >= 2:
                weights = [s.weight for s in run]
                win = sum(weights) - max(weights)
                factor = sum(weights) / max(weights)
                undeclared = any(
                    not s.reads and not s.writes for s in run
                )
                vacuous = (
                    " (caveat: some stages declare no footprints, so "
                    "their independence is asserted, not proven)"
                    if undeclared
                    else ""
                )
                findings.append(
                    PatternFinding(
                        pattern=PatternKind.TASK_PARALLELISM,
                        target=" || ".join(s.target for s in run),
                        loc=run[0].loc,
                        anchor_node=run[0].anchor_node,
                        grain_id=run[0].grain_id,
                        affected_nodes=tuple(
                            nid for s in run for nid in s.nodes
                        ),
                        affected_cycles=sum(weights),
                        blocking="",
                        benefit=(
                            f"running the {len(run)} stages concurrently "
                            f"cuts their serialized {sum(weights)} "
                            f"cycles to {max(weights)}: {win} cycles "
                            "off the span"
                        ),
                        win_cycles=win,
                        speedup_factor=factor,
                        detail=(
                            f"{len(run)} consecutive serialized stages "
                            "have pairwise-disjoint footprints — "
                            "nothing but program order serializes "
                            f"them{vacuous}"
                        ),
                        fix_hint=(
                            "wrap each stage in its own task (or "
                            "sections construct) and join once after "
                            "the last"
                        ),
                    )
                )
                i = j
            else:
                i += 1
        return findings


# ---------------------------------------------------------------------------
# pattern.geometric
# ---------------------------------------------------------------------------
def detect_geometric(
    model: StaticModel,
    machine_config: Optional[MachineConfig] = None,
    num_threads: int = DEFAULT_TEAM,
) -> list[PatternFinding]:
    """Loops whose iterations each write a disjoint block of one region:
    a geometric decomposition whose blocks can be placed on the NUMA
    node of the thread that computes them.

    The win is on the pessimistic work bound, not the span: every line
    the loop touches is charged the worst-case remote, contended
    latency by :func:`repro.staticc.bounds.work_upper_bound`; placing
    blocks locally caps those lines at the local latency instead.
    """
    with _obs.span("advisor.pattern.geometric"):
        config = machine_config or MachineConfig.paper_testbed()
        findings: list[PatternFinding] = []
        chunks = _chunks_by_loop(model.graph)
        for loop in model.loops:
            spec = loop.spec
            members = chunks.get(loop.loop_id, [])
            if len(members) < 2:
                continue
            # Regions written by every iteration, with per-iteration
            # intervals.
            per_region: dict[str, list[tuple[int, int, str]]] = {}
            writers: dict[str, set[str]] = {}
            for node in members:
                gid = node.grain_id or ""
                for region, start, end in node.writes:
                    if end > start:
                        per_region.setdefault(region, []).append(
                            (start, end, gid)
                        )
                        writers.setdefault(region, set()).add(gid)
            block_region = None
            for region in sorted(per_region):
                if len(writers[region]) != len(members):
                    continue
                intervals = sorted(per_region[region])
                disjoint = all(
                    a[1] <= b[0]
                    for a, b in zip(intervals, intervals[1:])
                )
                big_enough = all(
                    e - s >= LINE_SIZE for s, e, _ in intervals
                )
                if disjoint and big_enough:
                    block_region = region
                    break
            if block_region is None:
                continue
            # Count the lines the *cost model* charges (WorkRequest
            # accesses), not the lint footprints: the win must stay
            # within the stall term work_upper_bound actually pays.
            lines = sum(
                -(-access.nbytes // LINE_SIZE)
                for i in range(spec.iterations)
                for access in spec.iteration_request(i).accesses
                if access.nbytes > 0
            )
            team = min(num_threads, spec.num_threads or num_threads)
            worst = worst_line_latency(config, team)
            local = float(config.cost.local_mem_cycles)
            win = int(
                lines * max(0.0, worst - local) / config.cost.mlp
            )
            block_bytes = sorted(
                e - s for s, e, _ in per_region[block_region]
            )
            if win > 0:
                benefit = (
                    f"placing each block on its computing thread's "
                    f"NUMA node caps the loop's {lines} cache lines at "
                    f"local latency: up to {win} cycles off the "
                    "pessimistic work bound"
                )
            else:
                benefit = (
                    "blocks can be placed on the NUMA node of the "
                    "thread that computes them (the loop declares no "
                    "cost-model accesses, so no stall win is charged)"
                )
            findings.append(
                PatternFinding(
                    pattern=PatternKind.GEOMETRIC,
                    target=spec.definition_key(),
                    loc=str(spec.loc),
                    anchor_node=loop.fork_node,
                    affected_nodes=tuple(n.node_id for n in members),
                    affected_cycles=loop.total_cycles,
                    blocking="",
                    benefit=benefit,
                    win_cycles=win,
                    speedup_factor=1.0,
                    detail=(
                        f"each of the {len(members)} iterations writes "
                        f"a disjoint {block_bytes[0]}-"
                        f"{block_bytes[-1]} byte block of region "
                        f"{block_region!r} — a geometric decomposition"
                    ),
                    fix_hint=(
                        "distribute the region's pages block-wise "
                        "across NUMA nodes (first-touch by the owning "
                        "thread, or explicit round-robin placement) and "
                        "align the loop's chunking to the blocks"
                    ),
                )
            )
        return findings


# ---------------------------------------------------------------------------
# Orchestration and lint registration
# ---------------------------------------------------------------------------
Detector = Callable[
    [StaticModel, Optional[MachineConfig], int], list[PatternFinding]
]

# Registration order is report order; keep deterministic.
DETECTORS: tuple[tuple[PatternKind, Detector], ...] = (
    (PatternKind.REDUCTION, detect_reduction),
    (PatternKind.DO_ALL, detect_do_all),
    (PatternKind.PIPELINE, detect_pipeline),
    (PatternKind.TASK_PARALLELISM, detect_task_parallelism),
    (PatternKind.GEOMETRIC, detect_geometric),
)

PATTERN_RULES: tuple[str, ...] = tuple(
    kind.rule_id for kind, _ in DETECTORS
)


def detect_patterns(
    model: StaticModel,
    machine_config: Optional[MachineConfig] = None,
    num_threads: int = DEFAULT_TEAM,
) -> list[PatternFinding]:
    """Run every pattern detector over ``model`` in taxonomy order.

    ``num_threads`` parameterizes the benefit math (team-cap wins,
    locality wins); the lint passes use the paper testbed's default.
    """
    findings: list[PatternFinding] = []
    with _obs.span("advisor.patterns"):
        for _, detector in DETECTORS:
            findings.extend(detector(model, machine_config, num_threads))
    return findings


@register(
    "pattern.reduction",
    "write/write accumulations fixable as reductions",
    PROGRAM_LAYER,
)
def pass_reduction(model: StaticModel) -> Iterator[Diagnostic]:
    for finding in detect_reduction(model):
        yield finding_diagnostic(finding)


@register(
    "pattern.do-all",
    "all-schedule do-all certification per loop",
    PROGRAM_LAYER,
)
def pass_do_all(model: StaticModel) -> Iterator[Diagnostic]:
    for finding in detect_do_all(model):
        yield finding_diagnostic(finding)


@register(
    "pattern.pipeline",
    "dataflow-linked serialized stages (pipeline candidates)",
    PROGRAM_LAYER,
)
def pass_pipeline(model: StaticModel) -> Iterator[Diagnostic]:
    for finding in detect_pipeline(model):
        yield finding_diagnostic(finding)


@register(
    "pattern.task-parallelism",
    "independent serialized stages (task-parallel candidates)",
    PROGRAM_LAYER,
)
def pass_task_parallelism(model: StaticModel) -> Iterator[Diagnostic]:
    for finding in detect_task_parallelism(model):
        yield finding_diagnostic(finding)


@register(
    "pattern.geometric",
    "block-decomposable loops (geometric decomposition)",
    PROGRAM_LAYER,
)
def pass_geometric(model: StaticModel) -> Iterator[Diagnostic]:
    for finding in detect_geometric(model):
        yield finding_diagnostic(finding)
