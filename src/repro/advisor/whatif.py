"""Causal what-if projection over the static work-span bracket.

Given "target R runs k× faster", re-derive the projected work, critical
path, and speedup bracket *directly from the static model* — the
TASKPROF-style causal-profiler question answered with zero engine
invocations:

- projected span: :func:`repro.metrics.critical_path.critical_path`
  re-run over the unmodified static graph with a ``weights`` override
  mapping each affected node to ``int(duration / k)`` — the longest
  path re-routes automatically when the scaled region leaves the
  critical path (the "virtual speedup" effect causal profilers measure
  dynamically);
- projected work: ``work_cycles`` minus the cycles the scaling saved;
- projected pessimistic bound: projected work plus the *baseline*
  :func:`repro.staticc.bounds.overhead_upper_bound` — speeding compute
  up never adds stalls, forks, or dispatch operations, so reusing the
  baseline overhead term keeps the bound sound.

At ``k = 1`` every term reproduces the baseline :func:`bracket` exactly
(the identity weights drive the same dynamic program with the same
tie-breaks), which the cross-validation suite pins byte-for-byte over
every registered program.  Scaled durations floor-divide, so each
node's projected weight — and hence the projected span and work — is
monotone non-increasing in ``k``.

Limits: the projection inherits the series-parallel static model, so it
cannot see scheduling effects (steals, idling, contention shifting) —
the bracket narrows what any schedule can do, it does not predict one
schedule.  See DESIGN.md, "The advisor layer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.nodes import GrainGraph
from ..machine.machine import MachineConfig
from ..metrics.critical_path import critical_path
from ..obs import registry as _obs
from ..runtime.flavors import RuntimeFlavor
from ..staticc.bounds import (
    WorkSpanBounds,
    bracket,
    overhead_upper_bound,
)
from ..staticc.model import StaticModel


class AdvisorError(ValueError):
    """A user-facing advisor input error (unknown target, bad spec)."""


def parse_what_if(spec: str) -> tuple[str, float]:
    """Parse a ``TARGET=K`` what-if spec into ``(target, k)``.

    ``K`` must parse as a number >= 1 (k=1 is the identity scenario; the
    causal question "what if it ran slower" is out of scope for a
    *lower*-bounded span projection).
    """
    target, sep, factor = spec.partition("=")
    target = target.strip()
    factor = factor.strip()
    if not sep or not target or not factor:
        raise AdvisorError(
            f"bad --what-if spec {spec!r}: expected TARGET=K "
            "(for example 'solve=4' or 'matrix=2.5')"
        )
    try:
        k = float(factor)
    except ValueError:
        raise AdvisorError(
            f"bad --what-if factor {factor!r}: not a number"
        ) from None
    if not k >= 1.0:
        raise AdvisorError(
            f"bad --what-if factor {factor!r}: k must be >= 1"
        )
    return target, k


@dataclass(frozen=True)
class WhatIfScenario:
    """A resolved scaling scenario: these nodes run ``k``× faster."""

    target: str
    k: float
    node_ids: tuple[int, ...]
    description: str = ""


def _duration_nodes(graph: GrainGraph) -> dict[int, int]:
    """Grain nodes (fragments/chunks) with their declared durations."""
    return {
        node.node_id: node.duration
        for node in graph.nodes.values()
        if node.is_grain_node and node.duration > 0
    }


def known_targets(model: StaticModel) -> list[str]:
    """Every name :func:`resolve_target` accepts for ``model``, for the
    friendly unknown-target error.  Only names that actually resolve are
    listed: a grain id with no compute-carrying node (a spawn-only root,
    say) or a region no computing grain touches would bounce right back
    as unknown, so suggesting it would be a lie."""
    duration_nodes = _duration_nodes(model.graph)
    grains_with_work = {
        node.grain_id
        for nid, node in model.graph.nodes.items()
        if nid in duration_nodes and node.grain_id
    }
    targets: dict[str, None] = {"*": None}
    for task in model.tasks.values():
        if task.gid in grains_with_work:
            targets.setdefault(task.gid, None)
            if task.definition:
                targets.setdefault(task.definition, None)
    for loop in model.loops:
        targets.setdefault(loop.spec.definition_key(), None)
    for region in sorted(model.region_sizes):
        touched = any(
            nid in duration_nodes
            and any(
                r == region for r, _, _ in (*node.reads, *node.writes)
            )
            for nid, node in model.graph.nodes.items()
        )
        if touched:
            targets.setdefault(region, None)
    return list(targets)


def resolve_target(model: StaticModel, target: str) -> WhatIfScenario:
    """Resolve a target name to the static-graph nodes it scales.

    Accepted names, tried in order: ``*`` (every grain node), a grain id
    (``t:0``, task gids, chunk gids), a task definition name (all
    instances), a loop definition key, or a memory-region name (every
    grain node touching the region).  ``k`` is filled by the caller.
    """
    duration_nodes = _duration_nodes(model.graph)
    if target == "*":
        return WhatIfScenario(
            target=target,
            k=1.0,
            node_ids=tuple(sorted(duration_nodes)),
            description="every compute-carrying grain",
        )
    # Grain id: fragments/chunks of exactly that grain.
    by_grain = tuple(
        sorted(
            nid
            for nid, node in model.graph.nodes.items()
            if node.grain_id == target and nid in duration_nodes
        )
    )
    if by_grain:
        return WhatIfScenario(
            target=target,
            k=1.0,
            node_ids=by_grain,
            description=f"grain {target}",
        )
    # Task definition: every instance of the task.
    gids = {
        task.gid
        for task in model.tasks.values()
        if task.definition == target
    }
    if gids:
        nodes = tuple(
            sorted(
                nid
                for nid, node in model.graph.nodes.items()
                if node.grain_id in gids and nid in duration_nodes
            )
        )
        return WhatIfScenario(
            target=target,
            k=1.0,
            node_ids=nodes,
            description=f"{len(gids)} instance(s) of task {target!r}",
        )
    # Loop definition key: the loop's chunk nodes.
    for loop in model.loops:
        if loop.spec.definition_key() == target:
            nodes = tuple(
                sorted(
                    nid
                    for nid, node in model.graph.nodes.items()
                    if node.loop_id == loop.loop_id
                    and nid in duration_nodes
                )
            )
            return WhatIfScenario(
                target=target,
                k=1.0,
                node_ids=nodes,
                description=f"loop {target}",
            )
    # Memory region: every grain node touching it.
    if target in model.region_sizes:
        nodes = tuple(
            sorted(
                nid
                for nid, node in model.graph.nodes.items()
                if nid in duration_nodes
                and any(
                    r == target for r, _, _ in (*node.reads, *node.writes)
                )
            )
        )
        if nodes:
            return WhatIfScenario(
                target=target,
                k=1.0,
                node_ids=nodes,
                description=f"grains touching region {target!r}",
            )
    names = ", ".join(known_targets(model))
    raise AdvisorError(
        f"unknown what-if target {target!r} for program "
        f"{model.program!r}; known targets: {names}"
    )


def _ratio(baseline: int, projected: int) -> float:
    if projected <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / projected


@dataclass(frozen=True)
class Projection:
    """The causal projection of one scenario against one baseline.

    ``span_lower``/``work_cycles``/``work_upper`` are the projected
    quantities; the baseline bracket rides along so speedups and wins
    need no second expansion.
    """

    program: str
    flavor: str
    num_threads: int
    target: str
    k: float
    scaled_nodes: int
    baseline: WorkSpanBounds
    baseline_work_cycles: int
    span_lower: int
    work_cycles: int
    work_upper: int

    @property
    def bounds(self) -> WorkSpanBounds:
        """The projected bracket, shaped like :func:`bracket`'s output
        (this is what the k=1 byte-match pins against)."""
        return WorkSpanBounds(
            program=self.program,
            num_threads=self.num_threads,
            span_lower=self.span_lower,
            work_upper=self.work_upper,
        )

    @property
    def span_speedup(self) -> float:
        """Optimistic end: how much shorter the structural limit got."""
        return _ratio(self.baseline.span_lower, self.span_lower)

    @property
    def work_speedup(self) -> float:
        """Amdahl total-work ratio (T1 baseline / T1 projected)."""
        return _ratio(self.baseline_work_cycles, self.work_cycles)

    @property
    def upper_speedup(self) -> float:
        """Pessimistic end: the work-upper-bound ratio."""
        return _ratio(self.baseline.work_upper, self.work_upper)

    @property
    def speedup_bracket(self) -> tuple[float, float]:
        """The projected whole-program speedup bracket: both bound ends
        of the bracket shrink; the truth for any schedule sits between
        the smaller and larger ratio."""
        low, high = sorted((self.upper_speedup, self.span_speedup))
        return (low, high)

    def estimate(self, work: int, span: int) -> int:
        """Brent-style makespan estimate on ``num_threads`` threads."""
        return max(span, -(-work // self.num_threads))

    @property
    def baseline_estimate(self) -> int:
        return self.estimate(self.baseline_work_cycles,
                             self.baseline.span_lower)

    @property
    def projected_estimate(self) -> int:
        return self.estimate(self.work_cycles, self.span_lower)

    @property
    def win_cycles(self) -> int:
        """Projected wall-clock win of the scenario: the drop in the
        Brent estimate ``max(span, work/T)``.  Used for ranking."""
        return self.baseline_estimate - self.projected_estimate

    def to_dict(self) -> dict[str, object]:
        low, high = self.speedup_bracket
        return {
            "program": self.program,
            "flavor": self.flavor,
            "num_threads": self.num_threads,
            "target": self.target,
            "k": self.k,
            "scaled_nodes": self.scaled_nodes,
            "baseline": {
                "span_lower": self.baseline.span_lower,
                "work_cycles": self.baseline_work_cycles,
                "work_upper": self.baseline.work_upper,
            },
            "projected": {
                "span_lower": self.span_lower,
                "work_cycles": self.work_cycles,
                "work_upper": self.work_upper,
            },
            "speedup_bracket": [low, high],
            "win_cycles": self.win_cycles,
        }


def project(
    model: StaticModel,
    flavor: RuntimeFlavor,
    num_threads: int,
    scenario: Union[WhatIfScenario, str],
    k: Optional[float] = None,
    machine_config: Optional[MachineConfig] = None,
) -> Projection:
    """Project the work-span bracket under a scaling scenario.

    ``scenario`` is either a resolved :class:`WhatIfScenario` or a
    target name (resolved here); ``k`` overrides the scenario's factor
    when given.  Zero engine invocations: everything is recomputed from
    the already-expanded static graph.
    """
    with _obs.span("advisor.whatif"):
        if isinstance(scenario, str):
            scenario = resolve_target(model, scenario)
        factor = scenario.k if k is None else k
        if not factor >= 1.0:
            raise AdvisorError(
                f"what-if factor must be >= 1, got {factor!r}"
            )
        base = bracket(model, flavor, num_threads, machine_config)
        durations = _duration_nodes(model.graph)
        weights: dict[int, int] = {}
        saved = 0
        for nid in scenario.node_ids:
            duration = durations.get(nid, 0)
            if duration <= 0:
                continue
            scaled = int(duration / factor)
            weights[nid] = scaled
            saved += duration - scaled
        span = critical_path(model.graph, weights=weights).length_cycles
        work = model.work_cycles - saved
        work_upper = work + overhead_upper_bound(
            model, flavor, num_threads, machine_config
        )
        return Projection(
            program=model.program,
            flavor=flavor.name,
            num_threads=num_threads,
            target=scenario.target,
            k=factor,
            scaled_nodes=len(weights),
            baseline=base,
            baseline_work_cycles=model.work_cycles,
            span_lower=span,
            work_cycles=work,
            work_upper=work_upper,
        )
