"""Parallelization advisor: pattern detectors + causal what-if engine.

The advisor is the optimization-recommendation layer on top of
``repro.staticc``'s series-parallel model (ROADMAP item 3).  It has two
halves:

- :mod:`.patterns` — the ``pattern.*`` lint-pass family (PROGRAM_LAYER)
  detecting reduction, do-all, pipeline, task-parallelism, and
  geometric-decomposition opportunities from the static model's task
  and loop structure, per-grain memory footprints, and the shared
  conflict scanner of ``static.race``;
- :mod:`.whatif` — the causal projection engine: "target R runs k×
  faster" re-derives span, work, and the speedup bracket straight from
  the work-span bounds, zero engine invocations.

:func:`advise_program` ties both together into a ranked
:class:`AdvisorReport`.  Importing this package registers the
``pattern.*`` lint passes (the :mod:`.patterns` import carries the
side effect, mirroring ``repro.staticc.passes``); ``repro.lint``
imports it last for the same cycle-safety reasons.
"""

from .patterns import (
    DETECTORS,
    PATTERN_RULES,
    PatternFinding,
    PatternKind,
    detect_patterns,
    finding_diagnostic,
)
from .report import AdvisorReport, Recommendation, advise_program
from .whatif import (
    AdvisorError,
    Projection,
    WhatIfScenario,
    known_targets,
    parse_what_if,
    project,
    resolve_target,
)

__all__ = [
    "AdvisorError",
    "AdvisorReport",
    "DETECTORS",
    "PATTERN_RULES",
    "PatternFinding",
    "PatternKind",
    "Projection",
    "Recommendation",
    "WhatIfScenario",
    "advise_program",
    "detect_patterns",
    "finding_diagnostic",
    "known_targets",
    "parse_what_if",
    "project",
    "resolve_target",
]
