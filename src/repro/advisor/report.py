"""Ranked optimization recommendations for one program.

:func:`advise_program` is the advisor's library entry point (the CLI's
``grain-graphs advise`` and :func:`repro.workflow.profile_program`'s
``advise=True`` both call it): expand the program statically, run every
pattern detector, project the causal what-if for each scaling-shaped
finding plus any user-supplied ``TARGET=K`` scenarios, and rank the lot
by projected wall-clock win.  Zero engine invocations throughout —
everything derives from the static model — which the test suite pins
with :func:`repro.runtime.engine.engine_invocations`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..machine.machine import MachineConfig
from ..lint.diagnostics import LintReport, Severity
from ..obs import registry as _obs
from ..runtime.api import Program
from ..runtime.flavors import RuntimeFlavor, flavor_by_name
from ..staticc.bounds import WorkSpanBounds, bracket
from ..staticc.expansion import expand_program
from ..staticc.model import StaticModel
from .patterns import (
    PATTERN_RULES,
    PatternFinding,
    detect_patterns,
    finding_diagnostic,
)
from .whatif import Projection, WhatIfScenario, project

DEFAULT_THREADS = 48  # the paper testbed's core count


@dataclass(frozen=True)
class Recommendation:
    """One ranked recommendation: a pattern finding plus (for scaling
    patterns) the causal projection corroborating its win."""

    rank: int
    finding: PatternFinding
    projection: Optional[Projection] = None

    @property
    def win_cycles(self) -> int:
        return self.finding.win_cycles

    def to_dict(self) -> dict[str, object]:
        d: dict[str, object] = {
            "rank": self.rank,
            "pattern": self.finding.pattern.value,
            "rule_id": self.finding.pattern.rule_id,
            "target": self.finding.target,
            "loc": self.finding.loc,
            "blocking": self.finding.blocking,
            "benefit": self.finding.benefit,
            "detail": self.finding.detail,
            "fix_hint": self.finding.fix_hint,
            "win_cycles": self.win_cycles,
            "affected_cycles": self.finding.affected_cycles,
            "speedup_factor": self.finding.speedup_factor,
        }
        if self.projection is not None:
            d["projection"] = self.projection.to_dict()
        return d

    def render(self) -> str:
        lines = [
            f"#{self.rank} [{self.finding.pattern.value}] "
            f"{self.finding.target} — win {self.win_cycles} cycles"
        ]
        lines.append(f"    {self.finding.detail}")
        if self.finding.blocking:
            lines.append(f"    blocked by: {self.finding.blocking}")
        if self.finding.benefit:
            lines.append(f"    benefit: {self.finding.benefit}")
        if self.projection is not None:
            low, high = self.projection.speedup_bracket
            lines.append(
                f"    projected bracket: span {self.projection.span_lower}"
                f" work<= {self.projection.work_upper}"
                f" speedup {low:.2f}x-{high:.2f}x"
            )
        if self.finding.fix_hint:
            lines.append(f"    fix: {self.finding.fix_hint}")
        return "\n".join(lines)


@dataclass
class AdvisorReport:
    """Everything one ``grain-graphs advise`` run produced."""

    program: str
    input_summary: str
    flavor: str
    num_threads: int
    baseline: WorkSpanBounds
    baseline_work_cycles: int
    recommendations: list[Recommendation] = field(default_factory=list)
    what_ifs: list[Projection] = field(default_factory=list)
    lint: LintReport = field(default_factory=LintReport)

    @property
    def max_severity(self) -> Optional[Severity]:
        return self.lint.max_severity

    def at_or_above(self, threshold: Severity) -> list:
        return self.lint.at_or_above(threshold)

    def to_dict(self) -> dict[str, object]:
        return {
            "program": self.program,
            "input": self.input_summary,
            "flavor": self.flavor,
            "num_threads": self.num_threads,
            "baseline": {
                "span_lower": self.baseline.span_lower,
                "work_cycles": self.baseline_work_cycles,
                "work_upper": self.baseline.work_upper,
            },
            "recommendations": [r.to_dict() for r in self.recommendations],
            "what_ifs": [p.to_dict() for p in self.what_ifs],
            "lint": self.lint.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        lines = [
            f"advise {self.program} ({self.input_summary}) "
            f"flavor={self.flavor} threads={self.num_threads}",
            f"  baseline: span>={self.baseline.span_lower} "
            f"work={self.baseline_work_cycles} "
            f"work<={self.baseline.work_upper}",
        ]
        if self.recommendations:
            lines.append(
                f"  {len(self.recommendations)} recommendation(s), "
                "ranked by projected win:"
            )
            for rec in self.recommendations:
                lines.extend("  " + ln for ln in rec.render().splitlines())
        else:
            lines.append("  no pattern opportunities detected")
        for proj in self.what_ifs:
            low, high = proj.speedup_bracket
            lines.append(
                f"  what-if {proj.target}={proj.k:g}: "
                f"span {proj.baseline.span_lower} -> {proj.span_lower}, "
                f"work<= {proj.baseline.work_upper} -> {proj.work_upper}, "
                f"speedup {low:.2f}x-{high:.2f}x "
                f"(win {proj.win_cycles} cycles)"
            )
        return "\n".join(lines)


def _pattern_lint(model: StaticModel,
                  findings: Sequence[PatternFinding]) -> LintReport:
    """A lint report restricted to the ``pattern.*`` family, identical
    to what ``run_lint`` produces for those passes (detector order is
    registration order)."""
    report = LintReport(program=model.program)
    for rule in PATTERN_RULES:
        report.passes_run.append((rule, "program"))
    report.extend(
        finding_diagnostic(f).with_artifact("program") for f in findings
    )
    return report


def advise_program(
    program: Program,
    flavor: Union[RuntimeFlavor, str] = "MIR",
    num_threads: int = DEFAULT_THREADS,
    machine_config: Optional[MachineConfig] = None,
    what_ifs: Sequence[tuple[str, float]] = (),
    model: Optional[StaticModel] = None,
) -> AdvisorReport:
    """Statically analyze ``program`` and rank its optimization
    opportunities.

    ``what_ifs`` is a sequence of ``(target, k)`` scenarios (the CLI's
    ``--what-if TARGET=K``), projected after the detector-derived ones.
    Pass an already-expanded ``model`` to skip re-expansion (the
    workflow layer reuses its static-check model this way).
    """
    if isinstance(flavor, str):
        flavor = flavor_by_name(flavor)
    with _obs.span("advisor.run"):
        if model is None:
            with _obs.span("advisor.expand"):
                model = expand_program(program, machine_config)
        base = bracket(model, flavor, num_threads, machine_config)
        findings = detect_patterns(model, machine_config, num_threads)
        recommendations: list[Recommendation] = []
        with _obs.span("advisor.rank"):
            ranked = sorted(
                findings,
                key=lambda f: (
                    -f.win_cycles,
                    f.pattern.value,
                    f.target,
                ),
            )
            for rank, finding in enumerate(ranked, start=1):
                projection = None
                if finding.speedup_factor > 1.0 and finding.affected_nodes:
                    projection = project(
                        model,
                        flavor,
                        num_threads,
                        WhatIfScenario(
                            target=finding.target,
                            k=finding.speedup_factor,
                            node_ids=finding.affected_nodes,
                        ),
                        machine_config=machine_config,
                    )
                recommendations.append(
                    Recommendation(
                        rank=rank,
                        finding=finding,
                        projection=projection,
                    )
                )
        projections = [
            project(model, flavor, num_threads, target, k,
                    machine_config=machine_config)
            for target, k in what_ifs
        ]
        return AdvisorReport(
            program=model.program,
            input_summary=model.input_summary,
            flavor=flavor.name,
            num_threads=num_threads,
            baseline=base,
            baseline_work_cycles=model.work_cycles,
            recommendations=recommendations,
            what_ifs=projections,
            lint=_pattern_lint(model, findings),
        )
