"""Ahead-of-simulation static analysis (``grain-graphs check``).

``staticc`` — the *static checker* — expands a program's task and loop
structure symbolically into a series-parallel grain graph, computes
TASKPROF-style work/span bounds, and certifies data-race freedom over
all schedules, all without ever invoking the discrete-event engine.
See DESIGN.md ("The static layer") for the model and its limits.

Importing this package registers the ``static.*`` program-layer lint
passes (the import of :mod:`.passes` below must stay last: the lint
framework and the static passes import each other's submodules, and
this ordering is what keeps both entry orders cycle-safe).
"""

from .bounds import (
    WorkSpanBounds,
    bracket,
    overhead_upper_bound,
    work_upper_bound,
)
from .check import check_program
from .expansion import StaticExpansionError, expand_program
from .mhp import SPDecompositionError, SPTree
from .model import StaticLoop, StaticModel, StaticTask
from .validate import CrossValidation, cross_validate
from .verify import VerifiedFinding, VerifyReport, verify_program
from .witness import (
    WitnessSchedule,
    WitnessStep,
    synthesize_join_witness,
    synthesize_race_witness,
)

from . import passes  # noqa: E402,F401  (registration side-effect; keep last)

__all__ = [
    "CrossValidation",
    "SPDecompositionError",
    "SPTree",
    "StaticExpansionError",
    "StaticLoop",
    "StaticModel",
    "StaticTask",
    "VerifiedFinding",
    "VerifyReport",
    "WitnessSchedule",
    "WitnessStep",
    "WorkSpanBounds",
    "bracket",
    "check_program",
    "cross_validate",
    "expand_program",
    "overhead_upper_bound",
    "synthesize_join_witness",
    "synthesize_race_witness",
    "verify_program",
    "work_upper_bound",
]
