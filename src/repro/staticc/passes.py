"""Program-layer lint passes: diagnose a program *before* simulating it.

Every pass here receives a :class:`~repro.staticc.model.StaticModel` —
the symbolic series-parallel expansion of a program — and reasons about
*all* possible schedules at once, which is exactly what the dynamic
trace/graph passes cannot do.  The division of labor:

- ``static.workspan`` reports the TASKPROF-style T1/T∞/parallelism
  numbers and flags programs whose structure caps speedup;
- ``static.task-flood``, ``static.granularity``,
  ``static.chunk-imbalance``, and ``static.join-anomaly`` are the
  structural anti-pattern detectors (the paper's Sec. 4 problem classes
  — too many / too small grains, poor load balance, missing joins —
  caught from the program text rather than from a profile);
- ``static.race`` is the all-schedule race *certifier*: a clean result
  proves race freedom for every schedule (the series-parallel relation
  is schedule-invariant), strictly stronger than the dynamic
  ``race.conflict`` pass, which can only audit the one schedule that
  ran.  Both share one conflict scanner, so static findings are a
  superset of dynamic ones by construction.

``static.race`` is the only pass allowed to report at ERROR severity:
``grain-graphs check --fail-on error`` must pass on every registered
race-free program so it can gate CI ahead of simulation.
"""

from __future__ import annotations

from typing import Iterator

from ..lint.diagnostics import Diagnostic, Severity
from ..lint.framework import PROGRAM_LAYER, register
from ..lint.races import (
    conflict_diagnostic,
    scan_conflicts,
    truncation_diagnostic,
)
from ..runtime.loops import Schedule
from .model import StaticLoop, StaticModel

# Structural thresholds.  The task-flood cutoff is 64 tasks per core on
# the paper's 48-core testbed — far beyond any useful task granularity
# and the point where per-task overheads rival the work (Sec. 4.3.2's
# "huge number of fine-grained tasks" problem).
TASK_FLOOD_LIMIT = 64 * 48

# A task whose declared work is below the dearest flavor's creation cost
# (GCC: 1400 cycles) loses more to overhead than it contributes.
FINE_GRAIN_CYCLES = 1400

# Reference team for loop analysis when the spec does not pin one: the
# paper testbed's core count.
DEFAULT_TEAM = 48

# Static-schedule per-thread imbalance (max/mean of assigned cycles)
# beyond which the loop is flagged.
IMBALANCE_RATIO = 1.5

# Dynamic/guided dispatch cost reference (MIR's shared-counter hold).
DYNAMIC_DISPATCH_REF = 100


@register(
    "static.workspan",
    "static work/span bounds and parallelism",
    PROGRAM_LAYER,
)
def check_workspan(model: StaticModel) -> Iterator[Diagnostic]:
    yield Diagnostic(
        rule_id="static.workspan",
        severity=Severity.INFO,
        message=(
            f"work T1={model.work_cycles} cycles, span T∞="
            f"{model.span_cycles} cycles, parallelism "
            f"{model.parallelism:.2f} ({model.task_count} tasks, "
            f"{len(model.loops)} loops, max task depth "
            f"{model.max_task_depth})"
        ),
        node_id=model.graph.root_node_id,
    )
    expresses_parallelism = model.task_count > 1 or model.loops
    if expresses_parallelism and model.parallelism < 2.0:
        yield Diagnostic(
            rule_id="static.workspan",
            severity=Severity.WARNING,
            message=(
                f"static parallelism is only {model.parallelism:.2f}: "
                "the program's own structure caps speedup below 2x on "
                "any machine (span is dominated by one serial chain)"
            ),
            node_id=model.graph.root_node_id,
            fix_hint=(
                "break the longest chain: spawn independent work before "
                "waiting, or parallelize the dominant serial section"
            ),
        )


@register(
    "static.task-flood",
    "symbolic task count vs. useful granularity cutoff",
    PROGRAM_LAYER,
)
def check_task_flood(model: StaticModel) -> Iterator[Diagnostic]:
    explicit = model.task_count - 1  # exclude the implicit root
    if explicit <= TASK_FLOOD_LIMIT:
        return
    heaviest = max(
        model.tasks_by_definition().items(),
        key=lambda item: len(item[1]),
    )
    yield Diagnostic(
        rule_id="static.task-flood",
        severity=Severity.WARNING,
        message=(
            f"{explicit} explicit tasks expand from this input — beyond "
            f"{TASK_FLOOD_LIMIT} (64 per core on the 48-core testbed) "
            f"per-task overheads rival the work; densest construct "
            f"{heaviest[0]!r} accounts for {len(heaviest[1])} instances"
        ),
        node_id=model.graph.root_node_id,
        fix_hint=(
            "add a depth or size cutoff that switches to serial "
            "execution (if_clause=False) for small subproblems"
        ),
    )


@register(
    "static.granularity",
    "task definitions finer than their creation cost",
    PROGRAM_LAYER,
)
def check_granularity(model: StaticModel) -> Iterator[Diagnostic]:
    for definition, tasks in sorted(model.tasks_by_definition().items()):
        leaves = [t for t in tasks if t.spawns == 0]
        if len(leaves) < 2:
            continue  # one tiny task is noise, a family is a pattern
        avg_own = sum(t.own_cycles for t in leaves) / len(leaves)
        if avg_own >= FINE_GRAIN_CYCLES:
            continue
        sample = min(leaves, key=lambda t: t.own_cycles)
        yield Diagnostic(
            rule_id="static.granularity",
            severity=Severity.WARNING,
            message=(
                f"task construct {definition!r} expands to "
                f"{len(leaves)} leaf tasks averaging {avg_own:.0f} "
                f"cycles of work each — below the {FINE_GRAIN_CYCLES}-"
                "cycle task creation cost, so overhead exceeds the "
                "work they carry"
            ),
            grain_id=sample.gid,
            loc=sample.loc,
            fix_hint=(
                "aggregate iterations/subproblems per task, or guard "
                "the spawn with an if_clause granularity cutoff"
            ),
        )


def _static_thread_cycles(
    loop: StaticLoop, team: int
) -> list[int]:
    """Per-thread assigned cycles under the deterministic static plan."""
    totals = [0] * team
    for thread, chunks in enumerate(loop.spec.static_chunk_plan(team)):
        for start, end in chunks:
            totals[thread] += sum(loop.iter_cycles[start:end])
    return totals


@register(
    "static.chunk-imbalance",
    "loop chunking that cannot balance its iteration work",
    PROGRAM_LAYER,
)
def check_chunk_imbalance(model: StaticModel) -> Iterator[Diagnostic]:
    for loop in model.loops:
        spec = loop.spec
        n = spec.iterations
        if n < 2 or loop.total_cycles <= 0:
            continue
        team = min(DEFAULT_TEAM, spec.num_threads or DEFAULT_TEAM)
        chunks = spec.chunk_count_upper(team)
        anchor = model.graph.nodes[loop.fork_node]
        if 0 < chunks < team:
            yield Diagnostic(
                rule_id="static.chunk-imbalance",
                severity=Severity.WARNING,
                message=(
                    f"loop {spec.definition_key()!r} produces at most "
                    f"{chunks} chunks for a team of {team}: "
                    f"{team - chunks} threads are idle for the whole "
                    "loop under every schedule"
                ),
                node_id=anchor.node_id,
                loc=str(spec.loc),
                fix_hint=(
                    "shrink the chunk size (or drop it) so every "
                    "thread gets work"
                ),
            )
            continue
        if spec.schedule is Schedule.STATIC:
            totals = _static_thread_cycles(loop, team)
            busy = [t for t in totals if t > 0]
            if len(busy) < 2:
                continue
            mean = sum(totals) / len(totals)
            ratio = max(totals) / mean if mean > 0 else 1.0
            if ratio > IMBALANCE_RATIO:
                yield Diagnostic(
                    rule_id="static.chunk-imbalance",
                    severity=Severity.WARNING,
                    message=(
                        f"static schedule of loop "
                        f"{spec.definition_key()!r} assigns the busiest "
                        f"thread {ratio:.2f}x the mean work "
                        f"(team of {team}); the imbalance is fixed at "
                        "compile time and every run pays it"
                    ),
                    node_id=anchor.node_id,
                    loc=str(spec.loc),
                    fix_hint=(
                        "use schedule(dynamic) or schedule(guided), or "
                        "a static chunk size small enough to interleave "
                        "the heavy iterations"
                    ),
                )
        else:
            per_grab = loop.total_cycles / chunks if chunks else 0.0
            if 0 < per_grab < DYNAMIC_DISPATCH_REF:
                yield Diagnostic(
                    rule_id="static.chunk-imbalance",
                    severity=Severity.WARNING,
                    message=(
                        f"{spec.schedule.value} schedule of loop "
                        f"{spec.definition_key()!r} averages "
                        f"{per_grab:.0f} cycles of work per chunk grab "
                        f"— below the ~{DYNAMIC_DISPATCH_REF}-cycle "
                        "shared-counter dispatch cost, so the loop is "
                        "book-keeping bound (the Freqmine FPGF pattern)"
                    ),
                    node_id=anchor.node_id,
                    loc=str(spec.loc),
                    fix_hint=(
                        "raise the chunk size so each grab amortizes "
                        "its dispatch"
                    ),
                )


@register(
    "static.join-anomaly",
    "missing or redundant task joins",
    PROGRAM_LAYER,
)
def check_join_anomalies(model: StaticModel) -> Iterator[Diagnostic]:
    for gid in sorted(model.tasks):
        task = model.tasks[gid]
        is_root = not task.path[1:]
        if task.unsynced_at_end > 0 and not is_root:
            yield Diagnostic(
                rule_id="static.join-anomaly",
                severity=Severity.INFO,
                message=(
                    f"task {gid!r} ({task.definition!r}) ends with "
                    f"{task.unsynced_at_end} unsynchronized descendant"
                    f"{'s' if task.unsynced_at_end != 1 else ''} "
                    "(fire-and-forget): they outlive their parent and "
                    "only join at an ancestor's sync point or the "
                    "region barrier"
                ),
                grain_id=gid,
                loc=task.loc,
                fix_hint=(
                    "add TaskWait() before the task returns if its "
                    "caller assumes the children's effects are visible"
                ),
            )
        if task.redundant_taskwaits > 0:
            yield Diagnostic(
                rule_id="static.join-anomaly",
                severity=Severity.INFO,
                message=(
                    f"task {gid!r} issues {task.redundant_taskwaits} "
                    "TaskWait() with no outstanding children — a no-op "
                    "barrier on every schedule"
                ),
                grain_id=gid,
                loc=task.loc,
                fix_hint="drop the redundant TaskWait()",
            )


@register(
    "static.race",
    "all-schedule data-race certification",
    PROGRAM_LAYER,
)
def certify_races(model: StaticModel) -> Iterator[Diagnostic]:
    scan = scan_conflicts(model.graph)
    for conflict in scan.conflicts:
        yield conflict_diagnostic(
            conflict,
            rule_id="static.race",
            schedule_note=(
                "certified over all schedules: the series-parallel "
                "relation admits an interleaving for every order"
            ),
        )
    if scan.truncated:
        yield truncation_diagnostic(
            "race certification", model.graph.root_node_id
        )
