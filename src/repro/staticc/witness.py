"""Witness-schedule synthesis for static findings.

A *witness schedule* is a concrete, engine-replayable total order of
task dispatches — each pinned to a worker — that realizes the schedule
freedom a static finding asserts: for ``static.race`` it brings the two
conflicting grains temporally adjacent on distinct workers; for
``static.join-anomaly`` it keeps the escaping child undispatched until
after its parent has completed.  The forced-schedule replay mode
(:mod:`repro.runtime.sched.replay`) then executes the schedule through
the real engine, turning an abstract "some interleaving exists" into an
actual trace (DESIGN.md §12).

Realizability is by construction.  Every synthesized order is a linear
extension of the dispatch-dependency relation: task ``U`` must be
dispatched before ``T`` iff ``U``'s entry fragment reaches ``T``'s
entry in the static graph (``U``'s spawn point is happens-before
``T``'s).  That set is prefix-closed, and serial-elision preorder is
one witness-compatible extension of it, so:

- **race**: the dependency closures of both grains are laid out in
  preorder (the earlier grain ``g1`` stays at its own preorder slot —
  moving it later can deadlock when an intermediate task's spawn
  requires ``g1``'s completion), then ``g2`` is dispatched immediately
  after on the *other* worker, then everything else in preorder;
- **join-anomaly**: the escaping child's whole subtree is deferred to
  just before the first preorder-later task whose entry is
  happens-after the child's exit (or last overall), so the parent
  completes while the child has not even been dispatched;
- **chunk conflicts**: chunk-to-thread assignment is the loop
  dispatcher's decision, not the task scheduler's, so the witness is
  the *empty* schedule — deterministic FIFO replay with a 2-thread
  team — and confirmation rests on the replayed loop executing the two
  iterations as distinct chunks on distinct workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ids import is_chunk_gid, task_gid
from ..core.reachability import Reachability
from ..runtime.task import ROOT_PATH
from .model import StaticModel

ROOT_GID = task_gid(ROOT_PATH)


@dataclass(frozen=True)
class WitnessStep:
    """Dispatch grain ``gid`` on worker ``worker`` (in schedule order)."""

    gid: str
    worker: int


@dataclass(frozen=True)
class WitnessSchedule:
    """A concrete schedule demonstrating one static finding.

    ``kind`` is ``"task-race"``, ``"chunk-race"``, or ``"join-anomaly"``;
    ``rule_id`` names the static pass the witness belongs to.  ``steps``
    covers every non-root task of the program (the root starts running
    on worker 0 and is never scheduled) — empty for chunk witnesses,
    where the deterministic FIFO replay plus the loop team carries the
    demonstration.
    """

    program: str
    rule_id: str
    kind: str
    num_threads: int
    steps: tuple[WitnessStep, ...]
    region: Optional[str] = None
    pair: Optional[tuple[str, str]] = None
    target: Optional[str] = None
    parent: Optional[str] = None
    note: str = ""

    def engine_steps(self) -> tuple[tuple[str, int], ...]:
        """The ``(gid, worker)`` form :class:`repro.runtime.engine.Engine`
        consumes via ``replay_steps``."""
        return tuple((step.gid, step.worker) for step in self.steps)

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "rule_id": self.rule_id,
            "kind": self.kind,
            "num_threads": self.num_threads,
            "steps": [[s.gid, s.worker] for s in self.steps],
            "region": self.region,
            "pair": list(self.pair) if self.pair is not None else None,
            "target": self.target,
            "parent": self.parent,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WitnessSchedule":
        pair = data.get("pair")
        return cls(
            program=data["program"],
            rule_id=data["rule_id"],
            kind=data["kind"],
            num_threads=data["num_threads"],
            steps=tuple(
                WitnessStep(gid=gid, worker=worker)
                for gid, worker in data["steps"]
            ),
            region=data.get("region"),
            pair=(pair[0], pair[1]) if pair is not None else None,
            target=data.get("target"),
            parent=data.get("parent"),
            note=data.get("note", ""),
        )


@dataclass
class _Synth:
    """Shared per-model synthesis state (one reachability build)."""

    model: StaticModel
    _reach: Optional[Reachability] = field(default=None, repr=False)

    def _entry_reach(self) -> Reachability:
        if self._reach is None:
            self._reach = Reachability(
                self.model.graph,
                {t.entry_node for t in self.model.tasks.values()},
            )
        return self._reach

    def dispatch_closure(self, gid: str) -> set[str]:
        """Tasks (incl. the root) whose dispatch must precede ``gid``'s:
        exactly those whose entry fragment is happens-before ``gid``'s
        entry.  Prefix-closed by transitivity of reachability."""
        reach = self._entry_reach()
        target = self.model.tasks[gid].entry_node
        return {
            other
            for other, task in self.model.tasks.items()
            if other != gid and reach.reaches(task.entry_node, target)
        }


def _by_preorder(model: StaticModel, gids: set[str]) -> list[str]:
    return sorted(gids, key=lambda gid: model.tasks[gid].path)


def synthesize_race_witness(
    model: StaticModel,
    region: str,
    gid_a: str,
    gid_b: str,
    num_threads: int = 2,
) -> WitnessSchedule:
    """Schedule bringing the conflicting pair onto distinct workers.

    Chunk grains get the empty (FIFO + loop team) witness; task grains
    get the full dependency-closure construction.
    """
    if num_threads < 2:
        raise ValueError("a race witness needs at least two workers")
    pair = (gid_a, gid_b)
    if is_chunk_gid(gid_a) or is_chunk_gid(gid_b):
        return WitnessSchedule(
            program=model.program,
            rule_id="static.race",
            kind="chunk-race",
            num_threads=num_threads,
            steps=(),
            region=region,
            pair=pair,
            note=(
                "chunk-to-thread assignment belongs to the loop "
                "dispatcher; replay runs the deterministic FIFO schedule "
                f"with a {num_threads}-thread team and checks the two "
                "iterations land in distinct chunks on distinct workers"
            ),
        )
    tasks = model.tasks
    for gid in pair:
        if gid not in tasks:
            raise KeyError(f"{gid!r} is not a task of {model.program!r}")
    # g1 = serially (preorder) earlier side; it keeps its preorder slot.
    g1, g2 = sorted(pair, key=lambda gid: tasks[gid].path)
    synth = _Synth(model)
    prefix = synth.dispatch_closure(g1) | synth.dispatch_closure(g2)
    prefix.add(g1)
    prefix.discard(g2)
    prefix.discard(ROOT_GID)
    rest = set(tasks) - prefix - {g2, ROOT_GID}
    workers = {g1: 0, g2: 1}
    order = _by_preorder(model, prefix)
    order.append(g2)
    order.extend(_by_preorder(model, rest))
    steps = tuple(
        WitnessStep(gid=gid, worker=workers.get(gid, 0)) for gid in order
    )
    return WitnessSchedule(
        program=model.program,
        rule_id="static.race",
        kind="task-race",
        num_threads=num_threads,
        steps=steps,
        region=region,
        pair=(g1, g2),
        note=(
            f"dispatch the {len(prefix)}-task dependency closure in "
            f"serial-elision preorder, then {g2!r} on worker 1 adjacent "
            f"to {g1!r} on worker 0"
        ),
    )


def synthesize_join_witness(
    model: StaticModel,
    parent_gid: str,
    target_gid: str,
    num_threads: int = 2,
) -> WitnessSchedule:
    """Schedule demonstrating ``target_gid`` outliving ``parent_gid``.

    The target's subtree is deferred as late as the happens-before
    relation allows: just before the first preorder-later task whose
    entry requires the target's exit, or to the very end.
    """
    if num_threads < 2:
        raise ValueError("a join-anomaly witness needs at least two workers")
    tasks = model.tasks
    parent = tasks[parent_gid]
    target = tasks[target_gid]
    subtree = {
        gid
        for gid, task in tasks.items()
        if task.path[: len(target.path)] == target.path
    }
    exit_reach = Reachability(model.graph, {target.exit_node})
    others = _by_preorder(model, set(tasks) - subtree - {ROOT_GID})
    deferred = _by_preorder(model, subtree)
    order: list[str] = []
    inserted = False
    for gid in others:
        if (
            not inserted
            and tasks[gid].path > target.path
            and exit_reach.reaches(target.exit_node, tasks[gid].entry_node)
        ):
            order.extend(deferred)
            inserted = True
        order.append(gid)
    if not inserted:
        order.extend(deferred)
    steps = tuple(
        WitnessStep(gid=gid, worker=1 if gid == target_gid else 0)
        for gid in order
    )
    return WitnessSchedule(
        program=model.program,
        rule_id="static.join-anomaly",
        kind="join-anomaly",
        num_threads=num_threads,
        steps=steps,
        target=target_gid,
        parent=parent_gid,
        note=(
            f"defer {target_gid!r} (worker 1) past the completion of its "
            f"parent {parent.gid!r}; nothing orders the parent's exit "
            "after the child, so the deferral is schedule-legal"
        ),
    )
