"""The ``grain-graphs check`` entry point: expand, then lint, no engine.

:func:`check_program` is deliberately tiny — symbolic expansion produces
the :class:`~repro.staticc.model.StaticModel`, and the shared lint
runner executes every registered program-layer pass over it.  Nothing
here (or below here) touches :mod:`repro.runtime.engine`; the test suite
pins that with the engine invocation counter.
"""

from __future__ import annotations

from ..lint.diagnostics import LintReport
from ..lint.framework import run_lint
from ..machine.machine import MachineConfig
from ..runtime.api import Program
from .expansion import expand_program
from .model import StaticModel


def check_program(
    program: Program,
    machine_config: MachineConfig | None = None,
) -> tuple[StaticModel, LintReport]:
    """Statically analyze ``program``: symbolic expansion plus every
    registered program-layer lint pass.  Returns the model (for bounds
    queries and cross-validation) and the lint report."""
    model = expand_program(program, machine_config)
    report = run_lint(static_model=model, program=program.name)
    return model, report
