"""May-happen-in-parallel analysis over series-parallel grain graphs.

A grain graph produced by the engine's profiler or by symbolic expansion
is (for the programs this runtime can express) *series-parallel*: every
task's context is a chain of fragments interleaved with spawns and
taskwait joins, every parallel for-loop is a fork/join diamond of
chunks, and fire-and-forget children synchronize at exactly the same
ancestor join as their parent (adoption).  That structure admits the
classic DPST/SP-tree MHP decision procedure (TASKPROF, and Raman et
al.'s ESP-bags lineage): rebuild the series-parallel tree, then two
leaves ``a`` (serially earlier) and ``b`` are logically parallel **iff**
the child of ``LCA(a, b)`` on the path toward ``a`` is an *async* node.

This replaces O(pairs) bitset-reachability queries in the shared
conflict scanner of :mod:`repro.lint.races` with O(depth) LCA walks
after an O(n) tree build — no ``MAX_PAIR_CHECKS`` truncation hazard.

The tree builder doubles as a *verifier* of series-parallel shape: it
walks each task context, tracks which completed-but-unsynced exits must
be consumed at each taskwait join, and compares that expectation against
the join's actual JOIN in-edges.  Any mismatch (or any structural
surprise: multiple continuations, unvisited grain nodes, a cycle)
raises :class:`SPDecompositionError`, and the scanner falls back to the
bitset path — MHP answers are therefore never *assumed*, they are
cross-checked against the DAG they summarize.

Same-loop chunks are mutually async by construction here (each chunk is
wrapped in its own async node under the loop container), which encodes
the same policy as :func:`repro.core.reachability.logically_ordered`:
chunk-to-thread assignment is a schedule accident, so same-loop chunks
are pairwise logically parallel regardless of per-thread chain paths.
"""

from __future__ import annotations

from ..core.nodes import EdgeKind, GGNode, GrainGraph, NodeKind

__all__ = ["SPDecompositionError", "SPTree"]


class SPDecompositionError(ValueError):
    """The graph is not recognizably series-parallel; callers should
    fall back to bitset reachability."""


# SP-tree node kinds.  Only the async/non-async distinction matters for
# the MHP query; containers (task contexts, segments, loop bodies) are
# all "seq".
_SEQ = 0
_ASYNC = 1
_LEAF = 2


class _Ctx:
    """Walk state for one task context (explicit-stack recursion)."""

    __slots__ = ("cur", "task_node", "seg", "pending", "exit_leaf")

    def __init__(self, entry: int, task_node: int, seg: int) -> None:
        self.cur: int | None = entry  # next graph node in the chain
        self.task_node = task_node  # SP-tree index of the task container
        self.seg = seg  # SP-tree index of the open segment
        # Graph node ids of completed-but-unsynced exits (own children
        # plus adopted descendants) the next taskwait join must consume.
        self.pending: list[int] = []
        self.exit_leaf: int | None = None  # last fragment node id seen


class SPTree:
    """Series-parallel tree of a grain graph with O(depth) MHP queries.

    Raises :class:`SPDecompositionError` when the graph does not
    decompose (then use :class:`~repro.core.reachability.Reachability`).
    """

    def __init__(self, graph: GrainGraph) -> None:
        self._kind: list[int] = []
        self._parent: list[int] = []
        self._depth: list[int] = []
        # graph node id -> SP-tree leaf index, for every grain node.
        self._leaf: dict[int, int] = {}
        self._build(graph)

    # -- construction ---------------------------------------------------
    def _new(self, kind: int, parent: int) -> int:
        idx = len(self._kind)
        self._kind.append(kind)
        self._parent.append(parent)
        self._depth.append(0 if parent < 0 else self._depth[parent] + 1)
        return idx

    @staticmethod
    def _only_continuation(graph: GrainGraph, nid: int) -> int | None:
        nxt = [
            dst
            for dst, kind in graph.successors(nid)
            if kind is EdgeKind.CONTINUATION
        ]
        if len(nxt) > 1:
            raise SPDecompositionError(
                f"node {nid} has {len(nxt)} continuation successors"
            )
        return nxt[0] if nxt else None

    def _walk_loop(
        self, graph: GrainGraph, fork_id: int, loop_id: int | None
    ) -> tuple[int, list[int]]:
        """Traverse one fork/join loop diamond; returns (join id, chunk
        node ids in creation order)."""
        join_id: int | None = None
        chunks: list[int] = []
        stack = [dst for dst, _ in graph.successors(fork_id)]
        seen: set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            node = graph.nodes[nid]
            if node.kind is NodeKind.JOIN:
                if node.loop_id != loop_id:
                    raise SPDecompositionError(
                        f"loop {loop_id}: reached foreign join {nid}"
                    )
                if join_id is not None and join_id != nid:
                    raise SPDecompositionError(
                        f"loop {loop_id}: multiple join nodes"
                    )
                join_id = nid
                continue  # do not walk past the loop join
            if node.kind is NodeKind.CHUNK:
                chunks.append(nid)
            elif node.kind is not NodeKind.BOOKKEEPING:
                raise SPDecompositionError(
                    f"loop {loop_id}: unexpected {node.kind.value} "
                    f"node {nid} inside the diamond"
                )
            stack.extend(dst for dst, _ in graph.successors(nid))
        if join_id is None:
            raise SPDecompositionError(f"loop {loop_id} has no join node")
        chunks.sort()  # node-id order == creation order
        return join_id, chunks

    def _build(self, graph: GrainGraph) -> None:
        root_id = graph.root_node_id
        if root_id is None or root_id not in graph.nodes:
            raise SPDecompositionError("graph has no root node")
        try:
            graph.topological_order()
        except ValueError as exc:  # cyclic: not a DAG at all
            raise SPDecompositionError(str(exc)) from exc
        root_task = self._new(_SEQ, -1)
        root_seg = self._new(_SEQ, root_task)
        stack: list[_Ctx] = [_Ctx(root_id, root_task, root_seg)]
        while stack:
            ctx = stack[-1]
            nid = ctx.cur
            if nid is None:
                # Context exhausted: export unsynced exits to the parent.
                stack.pop()
                if ctx.exit_leaf is None:
                    raise SPDecompositionError("task context has no fragments")
                if stack:
                    parent = stack[-1]
                    parent.pending.extend(ctx.pending)
                    parent.pending.append(ctx.exit_leaf)
                elif ctx.pending:
                    raise SPDecompositionError(
                        "root context ends with unconsumed task exits"
                    )
                continue
            node = graph.nodes[nid]
            if node.kind is NodeKind.FRAGMENT:
                if nid in self._leaf:
                    raise SPDecompositionError(f"fragment {nid} revisited")
                self._leaf[nid] = self._new(_LEAF, ctx.seg)
                ctx.exit_leaf = nid
                ctx.cur = self._only_continuation(graph, nid)
            elif node.kind is NodeKind.FORK:
                if node.team_fork:
                    join_id, chunk_ids = self._walk_loop(
                        graph, nid, node.loop_id
                    )
                    loop_node = self._new(_SEQ, ctx.seg)
                    for cid in chunk_ids:
                        if cid in self._leaf:
                            raise SPDecompositionError(
                                f"chunk {cid} revisited"
                            )
                        wrapper = self._new(_ASYNC, loop_node)
                        self._leaf[cid] = self._new(_LEAF, wrapper)
                    ctx.cur = self._only_continuation(graph, join_id)
                else:
                    entries = [
                        dst
                        for dst, kind in graph.successors(nid)
                        if kind is EdgeKind.CREATION
                    ]
                    cont = self._only_continuation(graph, nid)
                    if len(entries) != 1 or cont is None:
                        raise SPDecompositionError(
                            f"task fork {nid} has {len(entries)} children "
                            f"and continuation {cont!r}"
                        )
                    wrapper = self._new(_ASYNC, ctx.seg)
                    child_task = self._new(_SEQ, wrapper)
                    child_seg = self._new(_SEQ, child_task)
                    ctx.cur = cont
                    # Child goes on top: its whole subtree is built (in
                    # serial-elision order) before the parent resumes,
                    # so SP-tree indices are a preorder == serial order.
                    stack.append(_Ctx(entries[0], child_task, child_seg))
            elif node.kind is NodeKind.JOIN:
                if node.loop_id is not None:
                    raise SPDecompositionError(
                        f"loop join {nid} reached outside its diamond"
                    )
                joined = {
                    src
                    for src, kind in graph.predecessors(nid)
                    if kind is EdgeKind.JOIN
                }
                if joined != set(ctx.pending):
                    raise SPDecompositionError(
                        f"taskwait join {nid} consumes {sorted(joined)} "
                        f"but {sorted(set(ctx.pending))} are pending"
                    )
                ctx.pending.clear()
                # Taskwait joins delimit segments: later items are
                # serially after everything the join consumed.
                ctx.seg = self._new(_SEQ, ctx.task_node)
                ctx.cur = self._only_continuation(graph, nid)
            else:
                raise SPDecompositionError(
                    f"{node.kind.value} node {nid} in a task context"
                )
        unvisited = sum(
            1 for n in graph.grain_nodes() if n.node_id not in self._leaf
        )
        if unvisited:
            raise SPDecompositionError(
                f"{unvisited} grain nodes unreachable from the root context"
            )

    # -- queries --------------------------------------------------------
    @property
    def leaf_count(self) -> int:
        return len(self._leaf)

    def ordered_ids(self, nid_a: int, nid_b: int) -> bool:
        """True iff the grain nodes ``nid_a``/``nid_b`` are logically
        ordered (a directed path exists some way) under every schedule."""
        ia = self._leaf[nid_a]
        ib = self._leaf[nid_b]
        if ia == ib:
            return True
        # Climb to the LCA, remembering the child on each side.
        ca, cb = ia, ib
        parent, depth = self._parent, self._depth
        while depth[ca] > depth[cb]:
            ia, ca = ca, parent[ca]
        while depth[cb] > depth[ca]:
            ib, cb = cb, parent[cb]
        while ca != cb:
            ia, ca = ca, parent[ca]
            ib, cb = cb, parent[cb]
        # ia/ib are now the LCA's children containing each leaf; the one
        # holding the serially-earlier leaf has the smaller index
        # (indices are assigned in serial-elision preorder).
        earlier_child = ia if ia < ib else ib
        return self._kind[earlier_child] != _ASYNC

    def ordered(self, a: GGNode, b: GGNode) -> bool:
        """Drop-in structural replacement for
        :func:`repro.core.reachability.logically_ordered`."""
        return self.ordered_ids(a.node_id, b.node_id)
