"""Sound work/span bounds bracketing any simulated execution.

The static model's ``span_cycles`` (T∞) counts raw declared compute only,
and the engine can only *add* to every path — creation overheads on fork
nodes, dispatch/book-keeping, memory stalls, contention — never subtract.
Static fragments break at exactly the dynamic fragment boundaries and
every static edge has a dynamic counterpart, so

    ``span_cycles  <=  measured critical path``

holds node-by-node.  :func:`work_upper_bound` produces the matching
*pessimistic* total: the dynamic critical path is at most the sum of all
node durations (it is one path through them), and every dynamic node's
duration is covered by one of the terms below.

- compute: ``work_cycles`` covers every fragment/chunk's declared cycles;
- stalls: every access line pays at most the worst-case line latency —
  full-machine NUMA distance with maximal contention — divided by the
  memory-level parallelism exactly as :meth:`CostModel.charge` does
  (``+1`` absorbs that model's single truncating division);
- forks: each of the ``spawns`` fork nodes costs at most
  ``max(inline_create, task_create + queue_contention * (T - 1))``;
- loops: at most ``chunk_count_upper(team) + team`` book-keeping nodes
  (every chunk grab plus each thread's final empty grab), each at most
  ``static_dispatch`` (static schedules) or ``team * dynamic_dispatch``
  (dynamic/guided: convoy wait plus hold through the shared counter).

Costs the engine keeps *between* nodes — taskwait entry, steal attempts,
barriers, wake latency — are gaps on the timeline, not node durations,
so the critical path never includes them and the bound need not either.
The bound is monotone in ``num_threads`` and deliberately loose: its job
is a sound bracket (``T∞ <= CP <= T1_upper``), not a prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import MachineConfig
from ..machine.topology import LOCAL_DISTANCE
from ..runtime.flavors import RuntimeFlavor
from ..runtime.loops import Schedule
from .model import StaticModel


@dataclass(frozen=True)
class WorkSpanBounds:
    """The bracket for one (program, flavor, machine, threads) point."""

    program: str
    num_threads: int
    span_lower: int  # static T∞: no execution can beat this
    work_upper: int  # pessimistic T1: no critical path can exceed this

    def contains(self, measured_critical_path: int) -> bool:
        return self.span_lower <= measured_critical_path <= self.work_upper


def worst_line_latency(
    config: MachineConfig, num_threads: int
) -> float:
    """Cycles one cache line can cost under the machine's cost model:
    the worse of an LLC hit and a maximally-remote, maximally-contended
    memory access (:meth:`ContentionModel.multiplier` caps the load at
    the thread count)."""
    matrix = config.topology.distance_matrix()
    max_distance = max(max(row) for row in matrix)
    contention = 1.0 + config.contention_alpha * max(0, num_threads - 1)
    remote = (
        config.cost.local_mem_cycles
        * (max_distance / LOCAL_DISTANCE)
        * contention
    )
    return max(float(config.cost.llc_hit_cycles), remote)


def overhead_upper_bound(
    model: StaticModel,
    flavor: RuntimeFlavor,
    num_threads: int,
    machine_config: MachineConfig | None = None,
) -> int:
    """Everything :func:`work_upper_bound` charges *beyond* the declared
    compute: worst-case stalls, fork costs, and loop book-keeping.

    Split out so the what-if engine (:mod:`repro.advisor.whatif`) can
    project ``work_upper`` for a scaled-compute scenario as
    ``projected work_cycles + overhead_upper_bound(...)`` — the overhead
    term is independent of how fast the compute runs (speeding a region
    up never adds stalls, forks, or dispatch operations, so reusing the
    baseline term keeps the bound sound), and at ``k=1`` the projection
    reproduces :func:`bracket` exactly because it is the same sum.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be at least 1")
    config = machine_config or MachineConfig.paper_testbed()
    total = 0

    line_latency = worst_line_latency(config, num_threads)
    stall = model.total_access_lines * line_latency / config.cost.mlp
    total += int(stall) + 1  # charge() truncates once per segment

    spawns = model.task_count - 1  # every task but the implicit root
    fork_cost = max(
        flavor.inline_create_cycles,
        flavor.task_create_cycles
        + flavor.queue_contention_cycles * (num_threads - 1),
    )
    total += spawns * fork_cost

    for loop in model.loops:
        team = min(num_threads, loop.spec.num_threads or num_threads)
        ops = loop.spec.chunk_count_upper(team) + team
        if loop.spec.schedule is Schedule.STATIC:
            per_op = flavor.static_dispatch_cycles
        else:
            # Convoy through the shared counter: wait + hold <= team
            # serialized holds.
            per_op = team * flavor.dynamic_dispatch_cycles
        total += ops * per_op

    return total


def work_upper_bound(
    model: StaticModel,
    flavor: RuntimeFlavor,
    num_threads: int,
    machine_config: MachineConfig | None = None,
) -> int:
    """Pessimistic upper bound on the total of all node durations of any
    run of ``model``'s program — hence on its critical path."""
    return model.work_cycles + overhead_upper_bound(
        model, flavor, num_threads, machine_config
    )


def bracket(
    model: StaticModel,
    flavor: RuntimeFlavor,
    num_threads: int,
    machine_config: MachineConfig | None = None,
) -> WorkSpanBounds:
    """The full static bracket for one execution configuration."""
    return WorkSpanBounds(
        program=model.program,
        num_threads=num_threads,
        span_lower=model.span_cycles,
        work_upper=work_upper_bound(
            model, flavor, num_threads, machine_config
        ),
    )
