"""The static program model: what symbolic expansion produces.

A :class:`StaticModel` is the series-parallel structure of one
:class:`~repro.runtime.api.Program` derived *without* the discrete-event
engine: a logical grain graph (fragments, forks, joins, per-iteration
chunks) whose node weights are the raw declared compute cycles, plus
per-task and per-loop symbol tables.

The graph reuses :class:`~repro.core.nodes.GrainGraph`, so the dynamic
toolchain applies unchanged: :func:`~repro.metrics.critical_path.
critical_path` computes the static span T∞, :class:`~repro.core.
reachability.Reachability` answers all-schedule ordering queries, and
the shared conflict scanner of ``lint/races.py`` certifies race freedom
over *every* schedule (TASKPROF's DPST argument: the series-parallel
relation is schedule-invariant).

Because node weights deliberately exclude every machine and runtime
cost, the work/span numbers are *optimistic lower bounds* on any
execution; :mod:`repro.staticc.bounds` derives the matching pessimistic
upper bound, giving the bracket
``span_cycles <= measured critical path <= work_upper_bound``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.nodes import GrainGraph
from ..runtime.loops import LoopSpec


@dataclass(frozen=True)
class StaticTask:
    """One symbolically-expanded task instance.

    ``gid`` uses the same path enumeration as the dynamic engine
    (``t:0/1/...``), so static and dynamic grains of one program are
    directly comparable.  ``own_cycles`` is the task's declared work
    excluding descendants; ``unsynced_at_end`` counts children (plus
    adopted fire-and-forget descendants) the task never waited for —
    they synchronize at an ancestor's sync point or the region barrier.
    """

    gid: str
    path: tuple[int, ...]
    depth: int
    loc: str
    definition: str
    label: str
    own_cycles: int
    spawns: int
    taskwaits: int
    redundant_taskwaits: int
    unsynced_at_end: int
    entry_node: int
    exit_node: int
    # Grain ids of the unsynced children / adopted descendants counted by
    # ``unsynced_at_end`` (same order the engine would adopt them) — the
    # targets the witness synthesizer demonstrates escaping their parent.
    unsynced_gids: tuple[str, ...] = ()


@dataclass(frozen=True)
class StaticLoop:
    """One symbolically-expanded parallel for-loop."""

    loop_id: int
    spec: LoopSpec
    iter_cycles: tuple[int, ...]  # declared cycles per iteration
    fork_node: int
    join_node: int

    @property
    def total_cycles(self) -> int:
        return sum(self.iter_cycles)

    @property
    def max_iter_cycles(self) -> int:
        return max(self.iter_cycles) if self.iter_cycles else 0


@dataclass
class StaticModel:
    """Everything symbolic expansion knows about one program."""

    program: str
    input_summary: str
    graph: GrainGraph
    tasks: dict[str, StaticTask]
    loops: list[StaticLoop]
    region_sizes: dict[str, int]
    work_cycles: int  # T1: total declared compute cycles
    span_cycles: int  # T∞: heaviest logical path (raw cycles)
    total_access_lines: int  # sum of ceil(nbytes / LINE_SIZE) per access
    span_node_ids: list[int] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    @property
    def max_task_depth(self) -> int:
        return max((t.depth for t in self.tasks.values()), default=0)

    @property
    def parallelism(self) -> float:
        """Static parallelism T1 / T∞ (1.0 for an empty program)."""
        if self.span_cycles <= 0:
            return 1.0
        return self.work_cycles / self.span_cycles

    def tasks_by_definition(self) -> dict[str, list[StaticTask]]:
        """Task instances grouped by their task-construct definition,
        excluding the implicit root task."""
        groups: dict[str, list[StaticTask]] = {}
        for task in self.tasks.values():
            if not task.path[1:]:
                continue  # the implicit root task has no construct
            groups.setdefault(task.definition, []).append(task)
        return groups

    def summary(self) -> str:
        return (
            f"StaticModel({self.program}): {self.task_count} tasks, "
            f"{len(self.loops)} loops, T1={self.work_cycles} "
            f"T∞={self.span_cycles} parallelism={self.parallelism:.2f}"
        )
