"""The static verifier: replay every static finding, sanitizer-style.

``grain-graphs check`` certifies properties over *all* schedules; this
module closes the evidence loop for the findings that assert a schedule
exists: for each ``static.race`` and ``static.join-anomaly`` finding it
synthesizes a concrete witness schedule (:mod:`repro.staticc.witness`),
replays it through the real engine in forced-schedule mode
(:mod:`repro.runtime.sched.replay`), and classifies the finding:

- **CONFIRMED** — the replayed trace exhibits the predicted behavior:
  the dynamic ``race.conflict`` pass fires on the conflicting pair and
  the pair demonstrably executed on distinct workers (race), or the
  escaping child's completion is recorded after its parent's
  (join anomaly).
- **UNWITNESSED** — the replay ran but did not exhibit it (e.g. the
  loop team merged the two conflicting iterations into one chunk), or
  the witness was not executable (deadlock / nested-parallelism reject).
  The static finding still stands — it is certified over all schedules —
  but no constructive evidence was produced.
- **SKIPPED** — nothing to replay: the finding asserts the *absence*
  of behavior (a redundant no-op taskwait).

The static phase never touches the engine (pinned by
``engine_invocations()`` in the test suite); exactly one engine run
happens per replayed finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.builder import build_grain_graph
from ..core.ids import parse_chunk_gid, task_gid
from ..core.nodes import GrainGraph, NodeKind
from ..lint.diagnostics import Diagnostic, LintReport, Severity
from ..lint.races import Conflict, conflict_diagnostic, scan_conflicts
from ..machine.machine import MachineConfig
from ..obs import registry as _obs
from ..profiler.events import TaskCompleteEvent, TaskCreateEvent
from ..runtime.api import Program, run_program
from ..runtime.engine import DeadlockError, NestedParallelismError
from ..runtime.flavors import MIR, RuntimeFlavor
from .check import check_program
from .model import StaticModel
from .witness import (
    WitnessSchedule,
    synthesize_join_witness,
    synthesize_race_witness,
)

CONFIRMED = "CONFIRMED"
UNWITNESSED = "UNWITNESSED"
SKIPPED = "SKIPPED"


@dataclass(frozen=True)
class VerifiedFinding:
    """One static finding plus its replay verdict."""

    diagnostic: Diagnostic
    verdict: str  # CONFIRMED | UNWITNESSED | SKIPPED
    detail: str
    witness: Optional[WitnessSchedule] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "diagnostic": self.diagnostic.to_dict(),
            "verdict": self.verdict,
            "detail": self.detail,
            "witness": (
                self.witness.to_dict() if self.witness is not None else None
            ),
        }


@dataclass
class VerifyReport:
    """Verdicts for every witnessable static finding of one program."""

    program: str
    static_report: LintReport
    findings: tuple[VerifiedFinding, ...]
    replays: int  # engine runs spent on witness playback

    def count(self, verdict: str) -> int:
        return sum(1 for f in self.findings if f.verdict == verdict)

    @property
    def confirmed(self) -> int:
        return self.count(CONFIRMED)

    @property
    def unwitnessed(self) -> int:
        return self.count(UNWITNESSED)

    @property
    def skipped(self) -> int:
        return self.count(SKIPPED)

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "replays": self.replays,
            "verdicts": {
                CONFIRMED: self.confirmed,
                UNWITNESSED: self.unwitnessed,
                SKIPPED: self.skipped,
            },
            "findings": [f.to_dict() for f in self.findings],
            "static_report": self.static_report.to_dict(),
        }


def _grain_cores(graph: GrainGraph, gid: str) -> set[int]:
    return {
        node.core
        for node in graph.grain_nodes()
        if node.grain_id == gid and node.core is not None
    }


def _completion_times(trace: Any) -> dict[str, int]:
    """Task gid -> completion timestamp, from the replayed trace."""
    paths: dict[int, str] = {}
    done: dict[str, int] = {}
    for event in trace.events:
        if isinstance(event, TaskCreateEvent):
            paths[event.tid] = task_gid(event.path)
        elif isinstance(event, TaskCompleteEvent):
            gid = paths.get(event.tid)
            if gid is not None:
                done[gid] = event.time
    return done


def _judge_task_race(
    graph: GrainGraph, region: str, pair: tuple[str, str]
) -> tuple[str, str]:
    dyn = scan_conflicts(graph)
    g1, g2 = pair
    if (region, g1, g2) not in dyn.keys():
        return UNWITNESSED, (
            f"dynamic race.conflict did not report ({region!r}, {g1!r}, "
            f"{g2!r}) on the replayed trace"
        )
    cores1 = _grain_cores(graph, g1)
    cores2 = _grain_cores(graph, g2)
    if len(cores1 | cores2) < 2:
        return UNWITNESSED, (
            f"replay kept both grains on one worker (cores {cores1} / "
            f"{cores2}); no cross-worker interleaving was demonstrated"
        )
    return CONFIRMED, (
        f"dynamic race.conflict fired on the replayed witness: {g1!r} ran "
        f"on cores {sorted(cores1)}, {g2!r} on cores {sorted(cores2)}"
    )


def _judge_chunk_race(
    graph: GrainGraph, region: str, pair: tuple[str, str]
) -> tuple[str, str]:
    _, loop_a, ia, _ = parse_chunk_gid(pair[0])
    _, loop_b, ib, _ = parse_chunk_gid(pair[1])
    if loop_a != loop_b:
        loops = (loop_a, loop_b)
        # Cross-loop chunk pairs are ordered by the barrier; a static
        # conflict between them cannot arise, but stay defensive.
        return UNWITNESSED, f"pair spans two loops {loops}; not replayable"
    same_chunk = False
    for node in graph.grain_nodes():
        if node.kind is not NodeKind.CHUNK or node.loop_id != loop_a:
            continue
        assert node.iter_range is not None
        lo, hi = node.iter_range
        if lo <= ia < hi and lo <= ib < hi:
            same_chunk = True
    dyn = scan_conflicts(graph)
    for conflict in dyn.conflicts:
        if conflict.region != region:
            continue
        nodes = (conflict.first, conflict.second)
        if any(
            n.kind is not NodeKind.CHUNK or n.loop_id != loop_a
            for n in nodes
        ):
            continue
        ranges = [n.iter_range for n in nodes]
        hits = {
            it: [
                n
                for n, rng in zip(nodes, ranges)
                if rng is not None and rng[0] <= it < rng[1]
            ]
            for it in (ia, ib)
        }
        if not hits[ia] or not hits[ib]:
            continue
        cores = {n.core for n in nodes if n.core is not None}
        if len(cores) < 2:
            continue
        return CONFIRMED, (
            f"replayed loop {loop_a} executed iterations {ia} and {ib} in "
            f"distinct conflicting chunks on cores {sorted(cores)} and "
            "dynamic race.conflict fired on them"
        )
    if same_chunk:
        return UNWITNESSED, (
            f"the loop schedule merged iterations {ia} and {ib} into one "
            "chunk, so this run serialized the conflict (the static "
            "finding still holds for other chunkings)"
        )
    return UNWITNESSED, (
        f"no conflicting dynamic chunk pair covering iterations {ia}/{ib} "
        f"of loop {loop_a} appeared on distinct workers in the replay"
    )


def _race_schedule_note(conflict: Conflict) -> str:
    return (
        "certified over all schedules: the series-parallel relation "
        "admits an interleaving for every order"
    )


def verify_program(
    program: Program,
    machine_config: Optional[MachineConfig] = None,
    flavor: RuntimeFlavor = MIR,
    num_threads: int = 2,
    max_replays: Optional[int] = None,
) -> tuple[StaticModel, VerifyReport]:
    """Statically check ``program``, then replay a synthesized witness
    through the engine for every witnessable finding.

    Returns the static model plus the verdict report.  The static phase
    is engine-free; each race / escaping-child finding costs exactly one
    replay run at ``num_threads`` workers under ``flavor``.
    ``max_replays`` bounds the engine-run budget: findings past the
    bound are reported SKIPPED (budget exhausted) instead of replayed —
    fire-and-forget recursions can carry hundreds of join anomalies.
    """
    with _obs.span("verify.static"):
        model, static_report = check_program(program, machine_config)
        scan = scan_conflicts(model.graph)
    findings: list[VerifiedFinding] = []
    replays = 0

    def _over_budget() -> bool:
        return max_replays is not None and replays >= max_replays

    def _budget_finding(diag: Diagnostic) -> VerifiedFinding:
        return VerifiedFinding(
            diagnostic=diag,
            verdict=SKIPPED,
            detail=(
                f"replay budget of {max_replays} engine runs exhausted; "
                "raise --max-replays to replay this finding"
            ),
        )

    def _replay(schedule: WitnessSchedule) -> Optional[GrainGraph]:
        nonlocal replays, failure
        replays += 1
        _obs.count("verify.replays")
        try:
            with _obs.span("verify.replay"):
                result = run_program(
                    program,
                    flavor=flavor,
                    num_threads=schedule.num_threads,
                    replay_steps=schedule.engine_steps(),
                )
        except (DeadlockError, NestedParallelismError) as exc:
            failure = f"witness not executable: {exc}"
            return None
        with _obs.span("verify.judge"):
            graph = build_grain_graph(result.trace)
        _last_trace[0] = result.trace
        return graph

    _last_trace: list[Any] = [None]

    race_diags = [
        d
        for d in static_report.diagnostics
        if d.rule_id == "static.race" and d.severity is Severity.ERROR
    ]
    for index, conflict in enumerate(scan.conflicts):
        region = conflict.region
        pair = conflict.grain_pair
        diag = (
            race_diags[index]
            if index < len(race_diags)
            else conflict_diagnostic(
                conflict, "static.race", _race_schedule_note(conflict)
            )
        )
        if _over_budget():
            findings.append(_budget_finding(diag))
            continue
        with _obs.span("verify.witness"):
            schedule = synthesize_race_witness(
                model, region, pair[0], pair[1], num_threads
            )
        failure = ""
        graph = _replay(schedule)
        if graph is None:
            verdict, detail = UNWITNESSED, failure
        elif schedule.kind == "chunk-race":
            verdict, detail = _judge_chunk_race(
                graph, region, schedule.pair or pair
            )
        else:
            verdict, detail = _judge_task_race(
                graph, region, schedule.pair or pair
            )
        findings.append(
            VerifiedFinding(
                diagnostic=diag,
                verdict=verdict,
                detail=detail,
                witness=schedule,
            )
        )

    unsynced_diags: dict[Optional[str], Diagnostic] = {}
    redundant_diags: dict[Optional[str], Diagnostic] = {}
    for d in static_report.diagnostics:
        if d.rule_id != "static.join-anomaly":
            continue
        if "unsynchronized" in d.message:
            unsynced_diags[d.grain_id] = d
        elif "no outstanding children" in d.message:
            redundant_diags[d.grain_id] = d

    for gid in sorted(model.tasks):
        task = model.tasks[gid]
        is_root = not task.path[1:]
        if task.unsynced_at_end > 0 and not is_root:
            diag = unsynced_diags.get(gid)
            if diag is None:
                continue
            if _over_budget():
                findings.append(_budget_finding(diag))
                continue
            target = task.unsynced_gids[0]
            with _obs.span("verify.witness"):
                schedule = synthesize_join_witness(
                    model, gid, target, num_threads
                )
            failure = ""
            graph = _replay(schedule)
            if graph is None:
                verdict, detail = UNWITNESSED, failure
            else:
                done = _completion_times(_last_trace[0])
                t_parent = done.get(gid)
                t_child = done.get(target)
                if t_parent is None or t_child is None:
                    verdict, detail = UNWITNESSED, (
                        f"replay trace lacks completion events for "
                        f"{gid!r}/{target!r}"
                    )
                elif t_child > t_parent:
                    verdict, detail = CONFIRMED, (
                        f"replay completed parent {gid!r} at cycle "
                        f"{t_parent} while unsynchronized child "
                        f"{target!r} completed later, at cycle {t_child}"
                    )
                else:
                    verdict, detail = UNWITNESSED, (
                        f"child {target!r} completed at cycle {t_child}, "
                        f"not after its parent ({t_parent})"
                    )
            findings.append(
                VerifiedFinding(
                    diagnostic=diag,
                    verdict=verdict,
                    detail=detail,
                    witness=schedule,
                )
            )
        if task.redundant_taskwaits > 0:
            diag = redundant_diags.get(gid)
            if diag is None:
                continue
            findings.append(
                VerifiedFinding(
                    diagnostic=diag,
                    verdict=SKIPPED,
                    detail=(
                        "a redundant taskwait asserts the absence of "
                        "work to wait for; there is no schedule to replay"
                    ),
                )
            )
    report = VerifyReport(
        program=model.program,
        static_report=static_report,
        findings=tuple(findings),
        replays=replays,
    )
    _obs.count("verify.programs")
    return model, report
