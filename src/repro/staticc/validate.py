"""Cross-validation: the static bracket against measured executions.

For every program the static analyzer claims

    ``static T∞  <=  measured critical path  <=  static T1 upper bound``

— the left inequality because the engine only ever *adds* time to the
logical structure, the right because the critical path is one path
through the run's nodes and the upper bound covers the sum of all of
them (see :mod:`repro.staticc.bounds`).  This module actually runs the
simulation and checks the claim, program by program; the test suite
executes it over the whole registry so a modeling error in either the
expander or the engine breaks loudly.

Simulation imports are local to the functions: importing this module
(or anything else under :mod:`repro.staticc`) must not pull in the
engine, so ``grain-graphs check`` stays statically pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .bounds import bracket
from .expansion import expand_program
from .model import StaticModel

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..machine import Machine
    from ..runtime.api import Program
    from ..runtime.flavors import RuntimeFlavor


@dataclass(frozen=True)
class CrossValidation:
    """One program's static-vs-dynamic comparison."""

    program: str
    num_threads: int
    span_lower: int  # static T∞
    measured_critical_path: int  # from the simulated trace's grain graph
    work_upper: int  # pessimistic static T1
    static_task_count: int
    dynamic_task_count: int

    @property
    def holds(self) -> bool:
        return (
            self.span_lower
            <= self.measured_critical_path
            <= self.work_upper
        )

    def describe(self) -> str:
        verdict = "ok" if self.holds else "VIOLATED"
        return (
            f"{self.program} (T={self.num_threads}): "
            f"{self.span_lower} <= {self.measured_critical_path} <= "
            f"{self.work_upper} [{verdict}]"
        )


def cross_validate(
    program: "Program",
    flavor: Optional["RuntimeFlavor"] = None,
    num_threads: int = 8,
    machine: Optional["Machine"] = None,
    model: Optional[StaticModel] = None,
) -> CrossValidation:
    """Expand ``program`` statically, simulate it, and compare.

    Pass ``model`` to reuse an existing expansion (the simulation still
    runs fresh).  The default configuration matches the paper testbed
    with the MIR flavor.
    """
    from ..core.builder import build_grain_graph
    from ..metrics.critical_path import critical_path
    from ..runtime.api import run_program
    from ..runtime.flavors import MIR

    flavor = flavor or MIR
    if model is None:
        machine_config = machine.config if machine is not None else None
        model = expand_program(program, machine_config)
    result = run_program(
        program, flavor=flavor, num_threads=num_threads, machine=machine
    )
    graph = build_grain_graph(result.trace)
    measured = critical_path(graph).length_cycles
    dynamic_tasks = len(
        {
            node.grain_id
            for node in graph.grain_nodes()
            if node.grain_id and node.grain_id.startswith("t:")
        }
    )
    bounds = bracket(
        model,
        flavor,
        num_threads,
        machine.config if machine is not None else None,
    )
    return CrossValidation(
        program=model.program,
        num_threads=num_threads,
        span_lower=bounds.span_lower,
        measured_critical_path=measured,
        work_upper=bounds.work_upper,
        static_task_count=model.task_count,
        dynamic_task_count=dynamic_tasks,
    )
