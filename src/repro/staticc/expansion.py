"""Symbolic program expansion: Program -> StaticModel, no engine.

The expander drives every task-body generator of a
:class:`~repro.runtime.api.Program` in depth-first *serial elision*
order (a spawned child runs to completion before its parent resumes —
TASKPROF's sequential schedule of the DPST) and records the logical
series-parallel structure as a :class:`~repro.core.nodes.GrainGraph`:

- one FRAGMENT node per between-action segment of each task, carrying
  the segment's declared compute cycles and memory footprints — the same
  fragment boundaries the engine's profiler produces, so static and
  dynamic graphs correspond node-for-node on the task side;
- FORK/JOIN nodes for spawns, taskwaits, the root's implicit barrier,
  and parallel for-loops;
- one CHUNK node per loop *iteration*: chunking is a schedule decision,
  so the logical structure is per-iteration (all iterations pairwise
  parallel between the loop's fork and join).

Task grain ids replicate the engine's path enumeration exactly
(``t:0/1/...``), which is what lets the static race certifier subsume
the dynamic ``race.conflict`` pass grain-for-grain.

Synchronization follows OpenMP semantics as the engine implements them:
``TaskWait`` consumes every not-yet-synced child spawned so far plus any
fire-and-forget descendants adopted from completed children; leftovers
propagate upward and ultimately join the root's implicit end-of-region
barrier.  All of this is schedule-independent, hence derivable without
simulating — the expander never touches
:class:`~repro.runtime.engine.Engine` (pinned by the test suite via
``engine_invocations()``).

An iterative explicit stack replaces recursion so deeply-nested task
trees (UTS, Sort) cannot hit the interpreter recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..core.ids import chunk_gid, task_gid
from ..core.nodes import EdgeKind, GGNode, GrainGraph, NodeKind
from ..machine.caches import LINE_SIZE
from ..machine.machine import MachineConfig
from ..machine.memory import MemoryMap
from ..metrics.critical_path import critical_path
from ..runtime.actions import (
    Alloc,
    ParallelFor,
    Spawn,
    TaskWait,
    Work,
    normalize_footprints,
)
from ..runtime.api import Program
from ..runtime.task import ROOT_PATH
from .model import StaticLoop, StaticModel, StaticTask


class StaticExpansionError(RuntimeError):
    """The program's structure cannot be expanded symbolically (the
    discrete-event engine would reject it too)."""


@dataclass
class _SymbolicHandle:
    """Stand-in for :class:`~repro.runtime.task.TaskHandle` delivered to
    ``yield Spawn(...)``.  Under serial elision the child has completed
    by the time the parent resumes, so ``completed`` is always True."""

    gid: str
    result: Any = None

    @property
    def completed(self) -> bool:
        return True


@dataclass
class _Frame:
    """One task being expanded (an entry on the explicit stack)."""

    gen: Generator[Any, Any, None]
    gid: str
    path: tuple[int, ...]
    depth: int
    loc: str
    definition: str
    label: str
    entry: GGNode
    cur: GGNode
    send: Any = None  # value the next generator.send() delivers
    pending_send: Any = None  # parent's send once its child completes
    cur_reads: list[tuple[str, int, int]] = field(default_factory=list)
    cur_writes: list[tuple[str, int, int]] = field(default_factory=list)
    own_cycles: int = 0
    spawns: int = 0
    taskwaits: int = 0
    redundant_taskwaits: int = 0
    children_spawned: int = 0
    frag_seq: int = 1
    # Completed-but-unsynced children (and adopted descendants):
    # (exit node id, grain id) pairs awaiting the next sync point.
    unsynced: list[tuple[int, str]] = field(default_factory=list)


class _Expander:
    """Single-use expansion state for one program."""

    def __init__(self, program: Program, config: MachineConfig) -> None:
        self.program = program
        self.graph = GrainGraph()
        self.memory = MemoryMap(config.topology.num_nodes)
        self.region_sizes: dict[str, int] = {}
        self.tasks: dict[str, StaticTask] = {}
        self.loops: list[StaticLoop] = []
        self.work_cycles = 0
        self.total_access_lines = 0
        self._next_loop_id = 0

    # -- graph helpers -------------------------------------------------
    def _new_fragment(self, frame_gid: str, loc: str, definition: str,
                      label: str, frag_seq: int) -> GGNode:
        return self.graph.new_node(
            NodeKind.FRAGMENT,
            grain_id=frame_gid,
            frag_seq=frag_seq,
            duration_override=0,
            loc=loc,
            definition=definition,
            label=label,
        )

    def _close_fragment(self, frame: _Frame) -> GGNode:
        """Seal the open fragment's footprints; returns the node."""
        node = frame.cur
        if frame.cur_reads:
            node.reads = tuple(frame.cur_reads)
            frame.cur_reads = []
        if frame.cur_writes:
            node.writes = tuple(frame.cur_writes)
            frame.cur_writes = []
        return node

    def _open_fragment(self, frame: _Frame, after: GGNode) -> None:
        node = self._new_fragment(
            frame.gid, frame.loc, frame.definition, frame.label,
            frame.frag_seq,
        )
        frame.frag_seq += 1
        self.graph.add_edge(after.node_id, node.node_id, EdgeKind.CONTINUATION)
        frame.cur = node

    def _make_frame(self, gen: Generator[Any, Any, None],
                    path: tuple[int, ...], depth: int, loc: str,
                    definition: str, label: str,
                    creator: Optional[GGNode]) -> _Frame:
        gid = task_gid(path)
        entry = self._new_fragment(gid, loc, definition, label, 0)
        if creator is not None:
            self.graph.add_edge(
                creator.node_id, entry.node_id, EdgeKind.CREATION
            )
        return _Frame(
            gen=gen, gid=gid, path=path, depth=depth, loc=loc,
            definition=definition, label=label, entry=entry, cur=entry,
        )

    # -- action handlers -----------------------------------------------
    def _do_work(self, frame: _Frame, action: Work) -> None:
        request = action.request
        frame.cur.duration_override = (
            (frame.cur.duration_override or 0) + request.cycles
        )
        frame.own_cycles += request.cycles
        self.work_cycles += request.cycles
        self._count_lines(request)
        if action.reads:
            frame.cur_reads.extend(
                normalize_footprints(action.reads, self.region_sizes)
            )
        if action.writes:
            frame.cur_writes.extend(
                normalize_footprints(action.writes, self.region_sizes)
            )

    def _count_lines(self, request: Any) -> None:
        for access in request.accesses:
            if access.nbytes > 0:
                self.total_access_lines += -(-access.nbytes // LINE_SIZE)

    def _do_alloc(self, frame: _Frame, action: Alloc) -> Any:
        region = self.memory.allocate(
            action.name, action.size_bytes, action.placement
        )
        self.region_sizes[region.name] = region.size_bytes
        if action.record_write:
            frame.cur_writes.append((region.name, 0, region.size_bytes))
        return region

    def _do_spawn(self, frame: _Frame, action: Spawn) -> _Frame:
        prev = self._close_fragment(frame)
        fork = self.graph.new_node(
            NodeKind.FORK,
            loc=str(action.loc),
            definition=action.definition_key(),
            label=action.label,
        )
        self.graph.add_edge(prev.node_id, fork.node_id, EdgeKind.CONTINUATION)
        child_path = frame.path + (frame.children_spawned,)
        frame.children_spawned += 1
        frame.spawns += 1
        child = self._make_frame(
            action.body(), child_path, frame.depth + 1,
            loc=str(action.loc), definition=action.definition_key(),
            label=action.label, creator=fork,
        )
        self._open_fragment(frame, fork)
        frame.pending_send = _SymbolicHandle(gid=child.gid)
        return child

    def _do_taskwait(self, frame: _Frame, implicit: bool = False) -> None:
        prev = self._close_fragment(frame)
        join = self.graph.new_node(NodeKind.JOIN, implicit=implicit)
        self.graph.add_edge(prev.node_id, join.node_id, EdgeKind.CONTINUATION)
        if not frame.unsynced:
            frame.redundant_taskwaits += 1
        for exit_node, _gid in frame.unsynced:
            self.graph.add_edge(exit_node, join.node_id, EdgeKind.JOIN)
        frame.unsynced.clear()
        frame.taskwaits += 1
        self._open_fragment(frame, join)

    def _do_parallel_for(self, frame: _Frame, action: ParallelFor) -> None:
        if frame.path != ROOT_PATH:
            raise StaticExpansionError(
                "parallel for-loops inside explicit tasks are nested "
                "parallelism, which the engine rejects and the static "
                "expander likewise does not model"
            )
        spec = action.loop
        loop_id = self._next_loop_id
        self._next_loop_id += 1
        prev = self._close_fragment(frame)
        fork = self.graph.new_node(
            NodeKind.FORK,
            team_fork=True,
            loop_id=loop_id,
            loc=str(spec.loc),
            definition=spec.definition_key(),
            label=spec.label,
        )
        self.graph.add_edge(prev.node_id, fork.node_id, EdgeKind.CONTINUATION)
        join = self.graph.new_node(NodeKind.JOIN, loop_id=loop_id)
        # Direct fork -> join edge keeps the join ordered for empty loops.
        self.graph.add_edge(fork.node_id, join.node_id, EdgeKind.CONTINUATION)
        iter_cycles: list[int] = []
        for i in range(spec.iterations):
            request = spec.iteration_request(i)
            iter_cycles.append(request.cycles)
            self.work_cycles += request.cycles
            self._count_lines(request)
            fp_reads, fp_writes = spec.iteration_footprints(i)
            chunk = self.graph.new_node(
                NodeKind.CHUNK,
                grain_id=chunk_gid(0, loop_id, i, i + 1),
                loop_id=loop_id,
                iter_range=(i, i + 1),
                duration_override=request.cycles,
                loc=str(spec.loc),
                definition=spec.definition_key(),
                label=spec.label,
                reads=normalize_footprints(
                    tuple(fp_reads), self.region_sizes
                ),
                writes=normalize_footprints(
                    tuple(fp_writes), self.region_sizes
                ),
            )
            self.graph.add_edge(
                fork.node_id, chunk.node_id, EdgeKind.CREATION
            )
            self.graph.add_edge(
                chunk.node_id, join.node_id, EdgeKind.JOIN
            )
        self.loops.append(
            StaticLoop(
                loop_id=loop_id,
                spec=spec,
                iter_cycles=tuple(iter_cycles),
                fork_node=fork.node_id,
                join_node=join.node_id,
            )
        )
        self._open_fragment(frame, join)

    def _finish_task(self, frame: _Frame,
                     parent: Optional[_Frame]) -> None:
        if parent is None and frame.unsynced:
            # End-of-parallel-region barrier: fire-and-forget descendants
            # synchronize here, exactly as in the engine.
            self._do_taskwait(frame, implicit=True)
            frame.taskwaits -= 1  # not a program-authored taskwait
        exit_node = self._close_fragment(frame)
        self.tasks[frame.gid] = StaticTask(
            gid=frame.gid,
            path=frame.path,
            depth=frame.depth,
            loc=frame.loc,
            definition=frame.definition,
            label=frame.label,
            own_cycles=frame.own_cycles,
            spawns=frame.spawns,
            taskwaits=frame.taskwaits,
            redundant_taskwaits=frame.redundant_taskwaits,
            unsynced_at_end=len(frame.unsynced),
            entry_node=frame.entry.node_id,
            exit_node=exit_node.node_id,
            unsynced_gids=tuple(gid for _, gid in frame.unsynced),
        )
        if parent is not None:
            # Adopted fire-and-forget descendants, then the task itself,
            # become the parent's to-sync obligations.
            parent.unsynced.extend(frame.unsynced)
            parent.unsynced.append((exit_node.node_id, frame.gid))

    # -- the driver ----------------------------------------------------
    def expand(self) -> StaticModel:
        root = self._make_frame(
            self.program.body(), ROOT_PATH, depth=0,
            loc="", definition=f"<implicit:{self.program.name}>",
            label=self.program.name, creator=None,
        )
        self.graph.root_node_id = root.entry.node_id
        stack: list[_Frame] = [root]
        while stack:
            frame = stack[-1]
            try:
                send, frame.send = frame.send, None
                action = frame.gen.send(send)
            except StopIteration:
                stack.pop()
                parent = stack[-1] if stack else None
                self._finish_task(frame, parent)
                if parent is not None:
                    parent.send = parent.pending_send
                    parent.pending_send = None
                continue
            if isinstance(action, Work):
                self._do_work(frame, action)
            elif isinstance(action, Spawn):
                stack.append(self._do_spawn(frame, action))
            elif isinstance(action, TaskWait):
                self._do_taskwait(frame)
            elif isinstance(action, ParallelFor):
                self._do_parallel_for(frame, action)
            elif isinstance(action, Alloc):
                frame.send = self._do_alloc(frame, action)
            else:
                raise TypeError(f"task yielded non-action {action!r}")
        span = critical_path(self.graph)
        return StaticModel(
            program=self.program.name,
            input_summary=self.program.input_summary,
            graph=self.graph,
            tasks=self.tasks,
            loops=self.loops,
            region_sizes=dict(self.region_sizes),
            work_cycles=self.work_cycles,
            span_cycles=span.length_cycles,
            total_access_lines=self.total_access_lines,
            span_node_ids=list(span.node_ids),
        )


def expand_program(
    program: Program, machine_config: Optional[MachineConfig] = None
) -> StaticModel:
    """Symbolically expand ``program`` into a :class:`StaticModel`.

    ``machine_config`` only supplies the NUMA node count for resolving
    ``Alloc`` placements; no cost model and no engine is involved.
    """
    config = machine_config or MachineConfig.paper_testbed()
    return _Expander(program, config).expand()
